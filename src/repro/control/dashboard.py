"""The single-file cluster dashboard served at ``GET /``.

One self-contained HTML document — inline CSS, inline JS, inline SVG,
zero external requests beyond the server's own ``/api/*`` endpoints —
so it works from a Python string over a loopback socket with no build
step and no network access.

Rendering choices follow the repo's dataviz conventions: status is
never color-alone (down links are dashed as well as red, down nodes get
an ✕ glyph), text wears ink tokens rather than series colors,
sparklines are thin 2 px lines, and dark mode is a selected palette via
``prefers-color-scheme`` rather than an automatic inversion.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>RAIN control plane</title>
<style>
:root {
  --page: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b;
  --ink-2: #52514e; --ink-3: #898781; --grid: #e1e0d9;
  --good: #0ca30c; --crit: #d03b3b; --warn: #fab219; --blue: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff;
    --ink-2: #c3c2b7; --ink-3: #898781; --grid: #2c2c2a; --blue: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header {
  display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap;
  padding: 12px 18px; border-bottom: 1px solid var(--grid);
  background: var(--surface);
}
header h1 { font-size: 16px; margin: 0; font-weight: 650; }
header .sub { color: var(--ink-2); }
#statebadge {
  padding: 1px 10px; border-radius: 10px; font-weight: 600;
  border: 1px solid var(--grid); color: var(--ink-2);
}
#statebadge.running { color: var(--good); border-color: var(--good); }
.controls { margin-left: auto; display: flex; gap: 6px; align-items: center; }
button, select {
  background: var(--surface); color: var(--ink); border: 1px solid var(--grid);
  border-radius: 6px; padding: 4px 10px; font: inherit; cursor: pointer;
}
button:hover { border-color: var(--ink-3); }
main {
  display: grid; gap: 14px; padding: 14px 18px;
  grid-template-columns: minmax(380px, 3fr) minmax(300px, 2fr);
}
section {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 12px 14px; min-width: 0;
}
section h2 {
  font-size: 12px; letter-spacing: .04em; text-transform: uppercase;
  color: var(--ink-2); margin: 0 0 8px; font-weight: 600;
}
#tiles {
  grid-column: 1 / -1; display: grid; gap: 14px; padding: 0; border: 0;
  background: none; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
}
.tile {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 10px 14px;
}
.tile .v { font-size: 24px; font-weight: 650; font-variant-numeric: tabular-nums; }
.tile .k { color: var(--ink-2); font-size: 12px; }
#topo svg { width: 100%; height: auto; display: block; }
.link-up { stroke: var(--ink-3); stroke-width: 1.5; }
.link-down { stroke: var(--crit); stroke-width: 2; stroke-dasharray: 5 4; }
.hit { stroke: transparent; stroke-width: 10; cursor: pointer; }
.devlabel { fill: var(--ink-2); font-size: 10px; }
.cross { stroke: var(--crit); stroke-width: 2; }
.token-ring { fill: none; stroke: var(--warn); stroke-width: 3; }
#spark .row { display: flex; align-items: center; gap: 8px; padding: 2px 0; }
#spark .name { width: 72px; color: var(--ink-2); font-size: 12px;
  white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
#spark .val { width: 80px; text-align: right; color: var(--ink-2);
  font-size: 12px; font-variant-numeric: tabular-nums; }
#spark svg { flex: 1; height: 22px; }
#spark polyline { fill: none; stroke: var(--blue); stroke-width: 2; }
#log {
  max-height: 320px; overflow-y: auto; font-size: 12px;
  font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
}
#log div { padding: 1px 0; border-bottom: 1px solid var(--grid); }
#log .t { color: var(--ink-3); }
#log .topic { color: var(--blue); }
.note { color: var(--ink-3); font-size: 12px; }
@media (max-width: 900px) { main { grid-template-columns: 1fr; } }
</style>
</head>
<body>
<header>
  <h1>RAIN control plane</h1>
  <span class="sub" id="scenario">—</span>
  <span id="statebadge">paused</span>
  <div class="controls">
    <button id="runbtn">Run</button>
    <button data-op='{"op":"step_for","dt":0.5}'>Step 0.5 s</button>
    <button data-op='{"op":"step_events","n":200}'>Step 200 ev</button>
    <button data-op='{"op":"finish"}'>Finish</button>
    <label class="note">speed
      <select id="speed">
        <option value="0.5">0.5×</option>
        <option value="1" selected>1×</option>
        <option value="5">5×</option>
        <option value="25">25×</option>
      </select>
    </label>
  </div>
</header>
<main>
  <div id="tiles">
    <div class="tile"><div class="v" id="t-now">0</div><div class="k">simulated time (s)</div></div>
    <div class="tile"><div class="v" id="t-events">0</div><div class="k">events executed</div></div>
    <div class="tile"><div class="v" id="t-token">—</div><div class="k">token holder</div></div>
    <div class="tile"><div class="v" id="t-down">0</div><div class="k">elements down</div></div>
  </div>
  <section id="topo">
    <h2>Topology <span class="note">(click a node, switch, or link to kill / revive it)</span></h2>
    <svg id="toposvg" viewBox="0 0 640 480" role="img" aria-label="cluster topology"></svg>
  </section>
  <section>
    <h2>Per-node throughput <span class="note">(bytes/s, top nodes)</span></h2>
    <div id="spark"></div>
    <h2 style="margin-top:14px">Event log</h2>
    <div id="log"></div>
  </section>
</main>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const jfetch = (url, opts) => fetch(url, opts).then((r) => r.json());
const post = (url, body) =>
  jfetch(url, { method: "POST", body: JSON.stringify(body) });

let topo = null;           // last /api/topology payload
let cursor = -1;           // event ring cursor
const history = new Map(); // node name -> [{t, bytes}] samples
const SAMPLES = 60;

function fmt(x, digits) {
  return Number(x).toLocaleString("en-US", { maximumFractionDigits: digits });
}
function rate(samples) {
  if (samples.length < 2) return 0;
  const a = samples[samples.length - 2], b = samples[samples.length - 1];
  return b.t > a.t ? (b.bytes - a.bytes) / (b.t - a.t) : 0;
}

function layout(t) {
  const cx = 320, cy = 240, pos = new Map();
  t.switches.forEach((s, i) => {
    const a = (2 * Math.PI * i) / Math.max(1, t.switches.length) - Math.PI / 2;
    pos.set(s.name, [cx + 90 * Math.cos(a), cy + 90 * Math.sin(a)]);
  });
  t.nodes.forEach((n, i) => {
    const a = (2 * Math.PI * i) / Math.max(1, t.nodes.length) - Math.PI / 2;
    pos.set(n.name, [cx + 195 * Math.cos(a), cy + 195 * Math.sin(a)]);
  });
  return pos;
}

function renderTopo(t) {
  const pos = layout(t), out = [];
  for (const l of t.links) {
    const a = pos.get(l.a), b = pos.get(l.b);
    if (!a || !b) continue;
    const cls = l.up ? "link-up" : "link-down";
    out.push(`<line class="${cls}" x1="${a[0]}" y1="${a[1]}" x2="${b[0]}" y2="${b[1]}"/>`);
    out.push(`<line class="hit" x1="${a[0]}" y1="${a[1]}" x2="${b[0]}" y2="${b[1]}"
      data-kind="link" data-target="${l.id}" data-up="${l.up}"><title>${l.id}: ${l.a} – ${l.b}</title></line>`);
  }
  for (const s of t.switches) {
    const [x, y] = pos.get(s.name);
    out.push(`<rect x="${x - 9}" y="${y - 9}" width="18" height="18" rx="3"
      fill="${s.up ? "var(--blue)" : "var(--surface)"}" stroke="var(--ink-3)"
      data-kind="switch" data-target="${s.name}" data-up="${s.up}" cursor="pointer">
      <title>${s.name} (${s.up ? "up" : "down"})</title></rect>`);
    if (!s.up) out.push(crossAt(x, y));
    out.push(`<text class="devlabel" x="${x}" y="${y - 13}" text-anchor="middle">${s.name}</text>`);
  }
  for (const n of t.nodes) {
    const [x, y] = pos.get(n.name);
    if (n.token)
      out.push(`<circle class="token-ring" cx="${x}" cy="${y}" r="14"/>`);
    out.push(`<circle cx="${x}" cy="${y}" r="9"
      fill="${n.up ? "var(--good)" : "var(--surface)"}" stroke="var(--ink-3)"
      data-kind="node" data-target="${n.name}" data-up="${n.up}" cursor="pointer">
      <title>${n.name} (${n.up ? "up" : "down"})${n.token ? " — holds token" : ""}</title></circle>`);
    if (!n.up) out.push(crossAt(x, y));
    out.push(`<text class="devlabel" x="${x}" y="${y + 22}" text-anchor="middle">${n.name}</text>`);
  }
  $("toposvg").innerHTML = out.join("");
}
function crossAt(x, y) {
  return `<path class="cross" d="M ${x - 5} ${y - 5} L ${x + 5} ${y + 5}
    M ${x - 5} ${y + 5} L ${x + 5} ${y - 5}" pointer-events="none"/>`;
}

$("toposvg").addEventListener("click", (ev) => {
  const el = ev.target.closest("[data-kind]");
  if (!el) return;
  const action = el.dataset.up === "true" ? "fail" : "repair";
  post("/api/fault", {
    action, kind: el.dataset.kind, target: el.dataset.target,
  }).then(refresh);
});

function renderSpark(t) {
  for (const n of t.nodes) {
    if (!history.has(n.name)) history.set(n.name, []);
    const h = history.get(n.name);
    const last = h[h.length - 1];
    if (!last || last.t !== t.now) h.push({ t: t.now, bytes: n.bytes });
    if (h.length > SAMPLES) h.shift();
  }
  const ranked = [...t.nodes]
    .sort((a, b) => b.bytes - a.bytes || a.name.localeCompare(b.name))
    .slice(0, 12);
  const rows = ranked.map((n) => {
    const h = history.get(n.name);
    const rates = [];
    for (let i = 1; i < h.length; i++)
      rates.push(h[i].t > h[i - 1].t
        ? (h[i].bytes - h[i - 1].bytes) / (h[i].t - h[i - 1].t) : 0);
    const max = Math.max(1, ...rates);
    const pts = rates.map((r, i) =>
      `${(i / Math.max(1, rates.length - 1)) * 160},${20 - (r / max) * 18}`);
    return `<div class="row"><span class="name">${n.name}</span>
      <svg viewBox="0 0 160 22" preserveAspectRatio="none">
        <polyline points="${pts.join(" ")}"/></svg>
      <span class="val">${fmt(rate(h), 0)} B/s</span></div>`;
  });
  $("spark").innerHTML = rows.join("") ||
    '<div class="note">no samples yet</div>';
}

function renderTiles(t) {
  $("scenario").textContent =
    `${t.scenario} · seed ${t.seed} · shards ${t.shards} · horizon ${t.horizon} s`;
  $("t-now").textContent = `${fmt(t.now, 3)} / ${fmt(t.horizon, 1)}`;
  $("t-events").textContent = fmt(t.events_total, 0);
  $("t-token").textContent = t.token_holders.join(", ") || "—";
  const down = t.nodes.filter((n) => !n.up).length +
    t.switches.filter((s) => !s.up).length +
    t.links.filter((l) => !l.up).length;
  $("t-down").textContent = fmt(down, 0);
  const badge = $("statebadge");
  badge.textContent = t.done ? "done" : t.state;
  badge.className = t.state === "running" && !t.done ? "running" : "";
  $("runbtn").textContent = t.state === "running" ? "Pause" : "Run";
}

function renderEvents(payload) {
  if (!payload.events.length) return;
  const log = $("log");
  for (const e of payload.events) {
    const row = document.createElement("div");
    const when = Number(e.time).toFixed(6);
    const shard = e.shard ? ` [${e.shard}]` : "";
    row.innerHTML = `<span class="t">${when}${shard}</span>
      <span class="topic">${e.topic}</span> ${Object.entries(e.data)
        .map(([k, v]) => `${k}=${v}`).join(" ")}`;
    log.appendChild(row);
  }
  while (log.childElementCount > 200) log.removeChild(log.firstChild);
  cursor = payload.next_seq - 1;
  log.scrollTop = log.scrollHeight;
}

function refresh() {
  return jfetch("/api/topology").then((t) => {
    topo = t;
    renderTiles(t);
    renderTopo(t);
    renderSpark(t);
  }).catch(() => {});
}
function pollEvents() {
  jfetch(`/api/events?since=${cursor}`).then(renderEvents).catch(() => {});
}

$("runbtn").addEventListener("click", () => {
  const op = topo && topo.state === "running" ? { op: "pause" }
    : { op: "run", speed: Number($("speed").value) };
  post("/api/control", op).then(refresh);
});
$("speed").addEventListener("change", () =>
  post("/api/control", { op: "speed", value: Number($("speed").value) }));
for (const btn of document.querySelectorAll("[data-op]"))
  btn.addEventListener("click", () =>
    post("/api/control", JSON.parse(btn.dataset.op)).then(refresh));

refresh();
setInterval(refresh, 1000);
setInterval(pollEvents, 1500);
</script>
</body>
</html>
"""
