"""Steerable scenario registry for the control plane.

Each scenario is a *builder* that constructs a fully-scripted cluster:
every fault and workload is scheduled at build time, before the first
step, so the event schedule is a pure function of ``(seed, shards)``.
That is what makes the determinism bridge hold — the driver may pause
and step at arbitrary simulated times, and the final report is still
byte-identical to the batch ``python -m repro metrics <name>`` run.

Scenarios:

- ``membership`` — the 5-node token-ring demo with a scripted mid-run
  crash and recovery (the ``python -m repro membership`` story, but
  scripted so it can be stepped); plain single-kernel simulator.
- ``churn-small`` — the scaled-down sharded churn demo
  (:data:`repro.scenarios.CHURN_SMALL`): 200 nodes, 16 switches, three
  crashes and one recovery, steerable at any ``--shards`` count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "ScenarioSpec",
    "BuiltScenario",
    "CONTROL_SCENARIOS",
    "build_scenario",
]

#: the membership demo's script (absolute simulated times)
MEMBERSHIP_NODES = 5
MEMBERSHIP_CRASH_AT = 3.0
MEMBERSHIP_RECOVER_AT = 10.0
MEMBERSHIP_HORIZON = 25.0


def _build_membership(seed: int, shards: int):
    """5-node membership ring, crash node2 at 3 s, recover at 10 s.

    Returns ``(cluster, sim)`` — the kernel is constructed here, so
    callers receive it directly instead of reaching through the cluster
    (rainlint RL008/RL012 kernel-binding hygiene).
    """
    from repro import ClusterConfig, RainCluster, Simulator

    if shards != 1:
        raise ValueError("scenario 'membership' runs on a single kernel")
    sim = Simulator(seed=seed)
    cluster = RainCluster(sim, ClusterConfig(nodes=MEMBERSHIP_NODES))
    node2 = cluster.hosts[2]
    cluster.faults.fail_at(MEMBERSHIP_CRASH_AT, node2)
    cluster.faults.repair_at(MEMBERSHIP_RECOVER_AT, node2)
    return cluster, sim


def _build_churn_small(seed: int, shards: int):
    """The CHURN_SMALL sharded churn demo (fault script pre-installed)."""
    from repro.scenarios import CHURN_SMALL, build_churn_cluster

    cluster = build_churn_cluster(
        seed,
        shards,
        nodes=CHURN_SMALL["nodes"],
        switches=CHURN_SMALL["switches"],
    )
    return cluster, None


@dataclass(frozen=True)
class ScenarioSpec:
    """A steerable scenario: builder + horizon + dispatch flavor."""

    name: str
    description: str
    horizon: float
    #: True when the builder returns a :class:`ShardedRainCluster`
    sharded: bool
    builder: Callable


def _churn_small_horizon() -> float:
    from repro.scenarios import CHURN_SMALL

    return float(CHURN_SMALL["horizon"])


CONTROL_SCENARIOS: dict[str, ScenarioSpec] = {
    "membership": ScenarioSpec(
        name="membership",
        description="5-node token ring with a scripted crash/recover cycle",
        horizon=MEMBERSHIP_HORIZON,
        sharded=False,
        builder=_build_membership,
    ),
    "churn-small": ScenarioSpec(
        name="churn-small",
        description="200-node sharded cluster under scripted churn",
        horizon=0.8,  # CHURN_SMALL["horizon"]; pinned by a test
        sharded=True,
        builder=_build_churn_small,
    ),
}


@dataclass
class BuiltScenario:
    """A constructed, scripted, not-yet-run scenario instance."""

    spec: ScenarioSpec
    cluster: object  # RainCluster | ShardedRainCluster
    seed: int
    shards: int
    #: the plain scenario's kernel, bound at build (None when sharded —
    #: a ShardedRainCluster steps through its own ``run``)
    sim: object = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def horizon(self) -> float:
        return self.spec.horizon

    @property
    def sharded(self) -> bool:
        return self.spec.sharded

    def run_to_horizon(self):
        """One batch run to the horizon — the byte-identity reference
        the stepped control-plane runs are compared against."""
        if self.sharded:
            self.cluster.run(self.horizon)
        else:
            self.sim.run(until=self.horizon)
        return self.cluster


def build_scenario(name: str, seed: int = 7, shards: int = 1) -> BuiltScenario:
    """Construct scenario ``name`` with its script installed."""
    if name not in CONTROL_SCENARIOS:
        known = ", ".join(sorted(CONTROL_SCENARIOS))
        raise KeyError(f"unknown control scenario {name!r} (known: {known})")
    spec = CONTROL_SCENARIOS[name]
    if not spec.sharded and shards != 1:
        raise ValueError(f"scenario {name!r} does not take --shards")
    cluster, sim = spec.builder(seed, shards)
    return BuiltScenario(spec=spec, cluster=cluster, seed=seed, shards=shards, sim=sim)
