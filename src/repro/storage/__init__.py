"""Distributed erasure-coded storage (paper Sec. 4.2)."""

from .placement import FirstK, LeastLoaded, Placement, Preferred
from .store import (
    STORAGE_SERVICE,
    DistributedStore,
    RetrieveError,
    StorageNode,
    StoreResult,
)

__all__ = [
    "DistributedStore",
    "FirstK",
    "LeastLoaded",
    "Placement",
    "Preferred",
    "RetrieveError",
    "STORAGE_SERVICE",
    "StorageNode",
    "StoreResult",
]
