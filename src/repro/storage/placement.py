"""Share-placement / retrieval-selection policies (paper Sec. 4.2).

"The flexibility to choose any k out of n nodes permits load balancing.
We can select the k nodes with the smallest load or, in the case of a
wide-area network, the k nodes that are geographically closest."
"""

from __future__ import annotations

from typing import Callable, Sequence

__all__ = ["Placement", "FirstK", "LeastLoaded", "Preferred"]


class Placement:
    """Orders candidate nodes for retrieval; first k are asked first."""

    def order(self, nodes: Sequence[str]) -> list[str]:
        """Candidate nodes, best first."""
        raise NotImplementedError


class FirstK(Placement):
    """Deterministic: ask nodes in their listed order."""

    def order(self, nodes: Sequence[str]) -> list[str]:
        return list(nodes)


class LeastLoaded(Placement):
    """Ask the least-loaded nodes first.

    ``load_of`` returns the current load metric for a node (outstanding
    requests, queue depth, CPU — the caller's choice).
    """

    def __init__(self, load_of: Callable[[str], float]):
        self.load_of = load_of

    def order(self, nodes: Sequence[str]) -> list[str]:
        return sorted(nodes, key=lambda n: (self.load_of(n), n))


class Preferred(Placement):
    """Ask nodes by an explicit ranking (e.g. geographic proximity).

    Unranked nodes come last in listed order.
    """

    def __init__(self, ranking: Sequence[str]):
        self.rank = {n: i for i, n in enumerate(ranking)}

    def order(self, nodes: Sequence[str]) -> list[str]:
        return sorted(nodes, key=lambda n: (self.rank.get(n, len(self.rank)), n))
