"""Distributed store/retrieve operations (paper Sec. 4.2).

A *store* encodes a block into n symbols with an (n, k) MDS code and
places one symbol per node; a *retrieve* collects symbols from any k
reachable nodes and decodes.  The data survives up to n − k node
failures, nodes can be hot-swapped, and retrieval choice enables load
balancing — the properties RAINVideo and RAINCheck build on.

Two classes: :class:`StorageNode` is the per-node symbol server;
:class:`DistributedStore` is the client-side operation engine (several
clients may target the same server set).  Both ride RUDP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..codes import DecodeError, ErasureCode
from ..net import Host
from ..rudp import RudpTransport
from ..sim import Signal, Simulator
from .placement import FirstK, Placement

__all__ = ["StorageNode", "DistributedStore", "StoreResult", "RetrieveError", "STORAGE_SERVICE"]

#: RUDP service name carrying storage traffic.
STORAGE_SERVICE = "storage"

_req_ids = itertools.count(1)


class RetrieveError(Exception):
    """Raised when fewer than k symbols could be collected."""


@dataclass
class StoreResult:
    """Outcome of a distributed store."""

    object_id: str
    acked: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every node holds its symbol."""
        return not self.missing


class StorageNode:
    """Per-node symbol server: holds one symbol per object."""

    def __init__(self, host: Host, transport: RudpTransport):
        self.host = host
        self.transport = transport
        # id -> (idx, share, data_len, digest): every symbol carries a
        # checksum so disk bit rot is detected at read time — a corrupt
        # symbol is reported as a miss (and discarded), never served, so
        # retrieval decodes around it and rebuild() can re-create it.
        self.symbols: dict[str, tuple[int, bytes, int, bytes]] = {}
        self.gets_served = 0
        self.corruptions_detected = 0
        metrics = host.sim.obs.metrics
        self._m_puts = metrics.counter(
            "storage.node.puts", help="symbols written"
        ).labels(node=host.name)
        self._m_gets = metrics.counter(
            "storage.node.gets", help="symbol reads served (hit or miss)"
        ).labels(node=host.name)
        self._m_corruptions = metrics.counter(
            "storage.node.corruptions", help="checksum failures detected at read"
        ).labels(node=host.name)
        transport.register(STORAGE_SERVICE, self._on_msg)

    @staticmethod
    def _digest(share: bytes) -> bytes:
        import hashlib

        return hashlib.sha256(share).digest()[:8]

    def holds(self, object_id: str) -> bool:
        """Whether this node currently stores a symbol for ``object_id``."""
        return object_id in self.symbols

    def corrupt(self, object_id: str, flip_byte: int = 0) -> None:
        """Test hook: silently flip one byte of the stored symbol,
        simulating disk corruption underneath the checksum."""
        idx, share, data_len, digest = self.symbols[object_id]
        mutated = bytearray(share)
        if mutated:
            mutated[flip_byte % len(mutated)] ^= 0xFF
        self.symbols[object_id] = (idx, bytes(mutated), data_len, digest)

    def _on_msg(self, src: str, msg: tuple) -> None:
        if not self.host.up:
            return
        kind = msg[0]
        reply_service = STORAGE_SERVICE + ".client"
        if kind == "PUT":
            _, req, object_id, idx, share, data_len = msg
            self.symbols[object_id] = (idx, share, data_len, self._digest(share))
            self._m_puts.inc()
            self.transport.send(src, reply_service, ("PUT_ACK", req, object_id))
        elif kind == "GET":
            _, req, object_id = msg
            held = self.symbols.get(object_id)
            self.gets_served += 1
            self._m_gets.inc()
            if held is None:
                self.transport.send(src, reply_service, ("GET_MISS", req, object_id))
                return
            idx, share, data_len, digest = held
            if self._digest(share) != digest:
                # bit rot: treat as lost, never serve corrupt data
                self.corruptions_detected += 1
                self._m_corruptions.inc()
                del self.symbols[object_id]
                self.transport.send(src, reply_service, ("GET_MISS", req, object_id))
                return
            self.transport.send(
                src,
                reply_service,
                ("GET_OK", req, object_id, idx, share, data_len),
                size_bytes=len(share),
            )
        elif kind == "DROP":
            _, req, object_id = msg
            self.symbols.pop(object_id, None)


class DistributedStore:
    """Client-side distributed store/retrieve engine."""

    def __init__(
        self,
        host: Host,
        transport: RudpTransport,
        nodes: Sequence[str],
        code: ErasureCode,
        placement: Optional[Placement] = None,
        request_timeout: float = 1.0,
        service: str = STORAGE_SERVICE,
    ):
        if len(nodes) != code.n:
            raise ValueError(
                f"{code.name} produces {code.n} symbols but {len(nodes)} nodes given"
            )
        self.host = host
        self.sim: Simulator = host.sim
        self.transport = transport
        self.nodes = list(nodes)
        self.code = code
        self.placement = placement or FirstK()
        self.request_timeout = request_timeout
        self.service = service
        self.outstanding: dict[str, int] = {n: 0 for n in nodes}
        metrics = self.sim.obs.metrics
        self._m_store_time = metrics.histogram(
            "storage.store.latency", help="simulated seconds per distributed store"
        ).labels(client=host.name)
        self._m_retrieve_time = metrics.histogram(
            "storage.retrieve.latency", help="simulated seconds per distributed retrieve"
        ).labels(client=host.name)
        self._m_xor_ops = metrics.counter(
            "codes.xor.ops", help="XOR piece operations spent in the erasure code"
        )
        self._m_code_bytes = metrics.counter(
            "codes.bytes", help="object bytes pushed through encode/decode"
        )
        self._op_series: dict[str, tuple] = {}
        # Several DistributedStore instances may share one transport:
        # the pending-request table lives on the transport so one client
        # handler serves them all.
        self._pending = getattr(transport, "_storage_client_pending", None)
        if self._pending is None:
            self._pending = {}
            transport._storage_client_pending = self._pending
            pending = self._pending

            def on_reply(src: str, msg: tuple) -> None:
                sig = pending.pop(msg[1], None)
                if sig is not None and not sig.triggered:
                    sig.succeed((src, msg))

            transport.register(service + ".client", on_reply)

    # -- coding (tally deltas feed the codes.* metrics) --------------------

    def _code_series(self, op: str) -> tuple:
        # Bound lazily so snapshots only list the ops that ran, but the
        # label lookup happens once per op, not once per object.
        cached = self._op_series.get(op)
        if cached is None:
            cached = (
                self._m_xor_ops.labels(code=self.code.name, op=op),
                self._m_code_bytes.labels(code=self.code.name, op=op),
            )
            self._op_series[op] = cached
        return cached

    def _encode(self, data: bytes) -> Sequence[bytes]:
        before = self.code.tally.count
        shares = self.code.encode(data)
        xors, nbytes = self._code_series("encode")
        xors.inc(self.code.tally.count - before)
        nbytes.inc(len(data))
        return shares

    def _decode(self, collected: dict[int, bytes], data_len: int) -> bytes:
        before = self.code.tally.count
        data = self.code.decode(collected, data_len)
        xors, nbytes = self._code_series("decode")
        xors.inc(self.code.tally.count - before)
        nbytes.inc(len(data))
        return data

    # -- wire plumbing -----------------------------------------------------

    def _ask(self, node: str, msg_body: tuple, size: int = 64, ctx: Any = None) -> Signal:
        req = next(_req_ids)
        sig = Signal(self.sim)
        self._pending[req] = sig
        kind, *rest = msg_body
        self.transport.send(
            node, self.service, (kind, req, *rest), size_bytes=size, ctx=ctx
        )
        return sig

    # -- operations --------------------------------------------------------

    def store(self, object_id: str, data: bytes, ctx: Any = None):
        """Generator: encode ``data`` and place one symbol per node.

        Use as ``result = yield from store.store(oid, data)``.  Waits up
        to ``request_timeout`` for each node's ack (in parallel);
        unresponsive nodes are listed in ``result.missing`` — the object
        is still retrievable while at least k symbols landed.
        """
        t0 = self.sim.now
        tracer = self.sim.obs.tracer
        span = None
        if tracer is not None:
            span = tracer.start(
                "storage.store",
                parent=ctx,
                node=self.host.name,
                object=object_id,
                size=len(data),
            )
            ctx = span.ctx
        shares = self._encode(data)
        sigs = {}
        for idx, node in enumerate(self.nodes):
            sigs[node] = self._ask(
                node,
                ("PUT", object_id, idx, shares[idx], len(data)),
                size=len(shares[idx]) + 48,
                ctx=ctx,
            )
        result = StoreResult(object_id=object_id)
        deadline = self.sim.timeout(self.request_timeout)
        remaining = dict(sigs)
        while remaining:
            fired = yield self.sim.any_of(list(remaining.values()) + [deadline])
            if fired is deadline:
                break
            src, msg = fired.value
            for node, sig in list(remaining.items()):
                if sig is fired:
                    result.acked.append(node)
                    del remaining[node]
        result.missing = sorted(remaining)
        self._m_store_time.observe(self.sim.now - t0)
        if span is not None:
            tracer.end(span, acked=len(result.acked), missing=len(result.missing))
        return result

    def retrieve(self, object_id: str, ctx: Any = None):
        """Generator: collect any k symbols and decode.

        Use as ``data = yield from store.retrieve(oid)``.  Nodes are
        tried in placement order, k at a time; failures rotate in the
        remaining candidates.  Raises :class:`RetrieveError` when fewer
        than k symbols can be gathered.
        """
        t0 = self.sim.now
        tracer = self.sim.obs.tracer
        span = None
        if tracer is not None:
            span = tracer.start(
                "storage.retrieve", parent=ctx, node=self.host.name, object=object_id
            )
            ctx = span.ctx
        order = self.placement.order(self.nodes)
        collected: dict[int, bytes] = {}
        data_len: Optional[int] = None
        tried: set[str] = set()
        inflight: dict[Any, str] = {}

        def launch(node: str):
            tried.add(node)
            self.outstanding[node] += 1
            sig = self._ask(node, ("GET", object_id), ctx=ctx)
            inflight[sig] = node

        for node in order[: self.code.k]:
            launch(node)
        while len(collected) < self.code.k:
            if not inflight:
                if span is not None:
                    tracer.end(span, status="error", reason="unreachable")
                raise RetrieveError(
                    f"{object_id}: only {len(collected)}/{self.code.k} symbols reachable"
                )
            deadline = self.sim.timeout(self.request_timeout)
            fired = yield self.sim.any_of(list(inflight) + [deadline])
            if fired is deadline:
                # everyone still pending is considered failed this round
                for sig, node in list(inflight.items()):
                    self.outstanding[node] -= 1
                    del inflight[sig]
                    nxt = next((n for n in order if n not in tried), None)
                    if nxt is not None:
                        launch(nxt)
                continue
            node = inflight.pop(fired)
            self.outstanding[node] -= 1
            src, msg = fired.value
            if msg[0] == "GET_OK":
                _, _, _, idx, share, dlen = msg
                collected[idx] = share
                data_len = dlen
            else:  # GET_MISS
                nxt = next((n for n in order if n not in tried), None)
                if nxt is not None:
                    launch(nxt)
        try:
            data = self._decode(collected, data_len if data_len is not None else 0)
        except DecodeError as exc:
            if span is not None:
                tracer.end(span, status="error", reason="decode")
            raise RetrieveError(str(exc)) from exc
        self._m_retrieve_time.observe(self.sim.now - t0)
        if span is not None:
            tracer.end(span, symbols=len(collected))
        return data

    def drop(self, object_id: str) -> None:
        """Best-effort delete of every node's symbol."""
        for node in self.nodes:
            req = next(_req_ids)
            self.transport.send(node, self.service, ("DROP", req, object_id))

    def rebuild(self, object_id: str, ctx: Any = None):
        """Generator: restore full redundancy after node replacement.

        The paper's hot-swap story (Sec. 4.2) removes and replaces up to
        n − k nodes; a replacement node comes back *empty*.  ``rebuild``
        probes every node for its symbol, decodes the object from the
        survivors, re-encodes, and re-stores the missing symbols — the
        regeneration step any production erasure store performs.

        Returns the list of node names whose symbols were restored.
        Raises :class:`RetrieveError` when fewer than k symbols survive.
        """
        tracer = self.sim.obs.tracer
        span = None
        if tracer is not None:
            span = tracer.start(
                "storage.rebuild", parent=ctx, node=self.host.name, object=object_id
            )
            ctx = span.ctx
        # probe all nodes in parallel
        sigs = {node: self._ask(node, ("GET", object_id), ctx=ctx) for node in self.nodes}
        collected: dict[int, bytes] = {}
        data_len = 0
        holders: set[str] = set()
        deadline = self.sim.timeout(self.request_timeout)
        remaining = dict(sigs)
        while remaining:
            fired = yield self.sim.any_of(list(remaining.values()) + [deadline])
            if fired is deadline:
                break
            for node, sig in list(remaining.items()):
                if sig is fired:
                    del remaining[node]
                    src, msg = fired.value
                    if msg[0] == "GET_OK":
                        _, _, _, idx, share, dlen = msg
                        collected[idx] = share
                        data_len = dlen
                        holders.add(node)
                    break
        if len(collected) < self.code.k:
            if span is not None:
                tracer.end(span, status="error", reason="unreachable")
            raise RetrieveError(
                f"{object_id}: only {len(collected)}/{self.code.k} symbols "
                f"survive; cannot rebuild"
            )
        data = self._decode(collected, data_len)
        shares = self._encode(data)
        repaired = []
        acks = {}
        for idx, node in enumerate(self.nodes):
            if idx in collected:
                continue
            acks[node] = self._ask(
                node,
                ("PUT", object_id, idx, shares[idx], data_len),
                size=len(shares[idx]) + 48,
                ctx=ctx,
            )
            repaired.append(node)
        deadline2 = self.sim.timeout(self.request_timeout)
        pending = dict(acks)
        restored = []
        while pending:
            fired = yield self.sim.any_of(list(pending.values()) + [deadline2])
            if fired is deadline2:
                break
            for node, sig in list(pending.items()):
                if sig is fired:
                    del pending[node]
                    restored.append(node)
                    break
        if span is not None:
            tracer.end(span, restored=len(restored))
        return sorted(restored)
