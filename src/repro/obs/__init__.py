"""Unified observability bus for the RAIN stack.

The paper's claims are judged by *traces and counters*: Up/Down
transition sequences (Fig. 6), token paths and 911 regenerations
(Fig. 9), XOR counts (Sec. 4.1), failover latency (Sec. 6.2).  This
package gives every subsystem one substrate to emit them through:

- :class:`MetricsRegistry` — labeled counters, gauges, and histograms,
  timestamped in *simulated* time;
- :class:`EventBus` — pub/sub structured events, subsuming the old
  :class:`repro.sim.Tracer` attachment pattern (which survives as a thin
  shim over the bus);
- :class:`ClusterReport` — a deterministic snapshot/JSON exporter so
  tests and benchmarks can diff whole-cluster behaviour byte-for-byte.

Every :class:`repro.sim.Simulator` owns an :class:`Observability` hub
(``sim.obs``); components reach their instruments through it.  Metric
names follow ``subsystem.component.metric`` (see docs/architecture.md).

This package is deliberately dependency-free (stdlib only) and imports
nothing from the rest of :mod:`repro`, so any layer — including the sim
kernel itself — can use it without cycles.
"""

from __future__ import annotations

from typing import Callable, Optional

from .bus import Event, EventBus, EventRing
from .flight import FlightRecorder
from .merge import (
    merge_event_counts,
    merge_metric_snapshots,
    merge_span_snapshots,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
)
from .report import SCHEMA_VERSION, ClusterReport
from .timeline import (
    TimelineRecorder,
    channel_timelines,
    render_channel_timelines,
    render_token_timeline,
    timelines_to_dict,
    token_path,
    token_timeline,
)
from .tracing import Span, SpanContext, SpanTracer, validate_chrome_trace

__all__ = [
    "ClusterReport",
    "Counter",
    "Event",
    "EventBus",
    "EventRing",
    "FlightRecorder",
    "SCHEMA_VERSION",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "Observability",
    "Span",
    "SpanContext",
    "SpanTracer",
    "TimelineRecorder",
    "channel_timelines",
    "merge_event_counts",
    "merge_metric_snapshots",
    "merge_span_snapshots",
    "render_channel_timelines",
    "render_token_timeline",
    "timelines_to_dict",
    "token_path",
    "token_timeline",
    "validate_chrome_trace",
]


class Observability:
    """Per-simulation observability hub: one registry + one bus.

    ``time_fn`` supplies the current *simulated* time; both the metrics
    registry and the event bus stamp everything they record with it.
    """

    def __init__(self, time_fn: Callable[[], float], exact_sums: bool = False):
        self.time_fn = time_fn
        self.metrics = MetricsRegistry(time_fn, exact_sums=exact_sums)
        self.bus = EventBus(time_fn)
        #: Causal span tracer; ``None`` until :meth:`install_tracer` is
        #: called.  Instrumentation sites guard on this, so an untraced
        #: simulation pays one attribute load per site.
        self.tracer: Optional[SpanTracer] = None

    def install_tracer(self, max_spans: int = 200_000) -> SpanTracer:
        """Attach (or return the existing) :class:`SpanTracer`."""
        if self.tracer is None:
            self.tracer = SpanTracer(self.time_fn, max_spans=max_spans)
        return self.tracer

    def install_flight_recorder(self, capacity: int = 512) -> FlightRecorder:
        """Attach a :class:`FlightRecorder` ring buffer to the bus."""
        return FlightRecorder(self, capacity=capacity)

    def flush(self) -> None:
        """Push deferred hot-path counters into the registry (see
        :meth:`MetricsRegistry.add_flush_hook`)."""
        self.metrics.flush()

    def snapshot(self) -> dict:
        """Deterministic combined snapshot (metrics + event counts)."""
        return {
            "metrics": self.metrics.snapshot(),
            "events": self.bus.topic_counts(),
        }
