"""Cluster-wide observability snapshots with a stable JSON form.

A :class:`ClusterReport` freezes one simulation's metrics and event
counts (plus free-form key numbers) into a deterministic, sorted
structure.  Serialization is canonical — sorted keys, fixed separators,
no wall-clock or object identities — so two same-seed runs produce
byte-identical JSON, making ``benchmarks/results/`` artifacts and test
fixtures machine-diffable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ClusterReport", "SCHEMA_VERSION"]

#: Version of the ClusterReport JSON layout.  External consumers (the
#: control-plane dashboard, benchmark diff tooling) check this field to
#: detect format drift instead of guessing from key shapes.  Bump it on
#: any structural change to :meth:`ClusterReport.to_dict` — adding,
#: removing, or re-typing keys — and note the change in
#: docs/architecture.md ("Control plane & dashboard").
SCHEMA_VERSION = 1


@dataclass
class ClusterReport:
    """A frozen snapshot of cluster observability state."""

    scenario: str = ""
    sim_time: float = 0.0
    metrics: dict = field(default_factory=dict)
    events: dict = field(default_factory=dict)
    #: free-form headline numbers (benchmark results, derived stats)
    extra: dict = field(default_factory=dict)
    #: JSON layout version (see :data:`SCHEMA_VERSION`); carried as a
    #: field so merged shard reports built via the constructor get it too
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def capture(cls, sim, scenario: str = "", **extra: object) -> "ClusterReport":
        """Snapshot a simulator's observability hub right now."""
        return cls(
            scenario=scenario,
            sim_time=sim.now,
            metrics=sim.obs.metrics.snapshot(),
            events=sim.obs.bus.topic_counts(),
            extra=dict(extra),
        )

    @classmethod
    def from_values(cls, scenario: str, **extra: object) -> "ClusterReport":
        """A report carrying only headline numbers (no live simulator)."""
        return cls(scenario=scenario, extra=dict(extra))

    # -- queries -----------------------------------------------------------

    def subsystems(self) -> set[str]:
        """Subsystems (first dotted name component) present in the report."""
        names = set(self.metrics) | set(self.events)
        return {n.split(".", 1)[0] for n in names}

    def series_count(self) -> int:
        """Total number of labeled metric series captured."""
        return sum(len(fam.get("series", ())) for fam in self.metrics.values())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (sorted where order is not already canonical)."""
        return {
            "schema_version": self.schema_version,
            "scenario": self.scenario,
            "sim_time": self.sim_time,
            "subsystems": sorted(self.subsystems()),
            "metrics": self.metrics,
            "events": self.events,
            "extra": {k: self.extra[k] for k in sorted(self.extra)},
        }

    def render(self) -> str:
        """Human-readable text form (the ``python -m repro metrics`` view)."""
        lines = [
            f"cluster report: {self.scenario or '(unnamed)'}",
            f"simulated time: {self.sim_time:g} s",
            f"subsystems ({len(self.subsystems())}): "
            + ", ".join(sorted(self.subsystems())),
        ]
        for k in sorted(self.extra):
            lines.append(f"  {k} = {self.extra[k]}")
        lines.append(f"metrics ({len(self.metrics)} families, "
                     f"{self.series_count()} series):")
        for name in sorted(self.metrics):
            fam = self.metrics[name]
            for s in fam["series"]:
                label = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items()))
                where = f"{name}{{{label}}}" if label else name
                if fam["type"] == "histogram":
                    stat = f"count={s['count']} sum={s['sum']:g}"
                    if s["count"]:
                        stat += f" min={s['min']:g} max={s['max']:g}"
                    lines.append(f"  {where}  {stat}")
                else:
                    lines.append(f"  {where}  {s['value']:g}")
        lines.append(f"bus topics ({len(self.events)}):")
        for topic in sorted(self.events):
            lines.append(f"  {topic}  {self.events[topic]}")
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON: sorted keys, stable separators, LF-terminated."""
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=True, default=str
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_json()
