"""Labeled metric instruments over simulated time.

A :class:`MetricsRegistry` owns metric *families* keyed by a dotted name
(``subsystem.component.metric``); each family fans out into *series* by
label set, so ``registry.counter("net.packets.dropped").labels(
reason="link_loss").inc()`` and a different ``reason`` coexist under one
name.  Three instrument kinds:

- :class:`Counter` — monotone accumulator (``inc``);
- :class:`Gauge` — last-write-wins value (``set``/``add``);
- :class:`Histogram` — bucketed distribution with count/sum/min/max.

All series record the simulated time of their first and latest update,
taken from the registry's ``time_fn`` — never the wall clock — so
snapshots of a deterministic simulation are themselves deterministic.
Snapshots sort families and series, making two same-seed runs
byte-identical when serialized.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Iterable, Optional

__all__ = [
    "Counter",
    "ExactCounter",
    "ExactHistogram",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "exact_add",
]


def exact_add(partials: list, x: float) -> None:
    """Shewchuk compensated accumulation: add ``x`` into ``partials``.

    ``math.fsum(partials)`` afterwards is the exactly-rounded sum of
    every value ever added.  Because the partial sums represent the
    mathematical (associative) sum, accumulating the same multiset of
    values in *any* order — or split across several lists that are later
    concatenated — yields the same ``fsum``.  That property is what lets
    a sharded simulation merge per-shard metric state into totals that
    are byte-identical regardless of how observations interleaved.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]

#: Log-spaced default buckets covering microseconds to hours of
#: simulated time (and small-to-large generic magnitudes).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    m * (10.0**e) for e in range(-6, 5) for m in (1.0, 2.5, 5.0)
)


class LabelCardinalityError(Exception):
    """Raised when a family exceeds its maximum number of label series."""


class _Series:
    """State shared by every instrument kind: identity and timestamps."""

    __slots__ = ("family", "labels", "created_at", "updated_at")

    def __init__(self, family: "_Family", labels: tuple[tuple[str, str], ...]):
        self.family = family
        self.labels = labels
        now = family.registry.time_fn()
        self.created_at = now
        self.updated_at = now

    def _touch(self) -> None:
        self.updated_at = self.family.registry.time_fn()


class Counter(_Series):
    """Monotone accumulator."""

    kind_name = "counter"

    __slots__ = ("value",)

    def __init__(self, family: "_Family", labels: tuple[tuple[str, str], ...]):
        super().__init__(family, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter decrement not allowed: {amount}")
        self.value += amount
        self._touch()

    def _snapshot(self) -> dict:
        return {"value": self.value}


class Gauge(_Series):
    """Last-write-wins value (e.g. queue depth, membership size)."""

    kind_name = "gauge"

    __slots__ = ("value",)

    def __init__(self, family: "_Family", labels: tuple[tuple[str, str], ...]):
        super().__init__(family, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)
        self._touch()

    def add(self, amount: float) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount
        self._touch()

    def _snapshot(self) -> dict:
        return {"value": self.value}


class Histogram(_Series):
    """Bucketed distribution with count, sum, min, and max."""

    kind_name = "histogram"

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, family: "_Family", labels: tuple[tuple[str, str], ...]):
        super().__init__(family, labels)
        self.bounds: tuple[float, ...] = family.buckets
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._touch()

    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def _snapshot(self) -> dict:
        # Only non-empty buckets are serialized, keyed by their upper
        # bound ("+inf" for overflow), keeping reports compact.
        buckets = {}
        for i, c in enumerate(self.bucket_counts):
            if c:
                key = "+inf" if i == len(self.bounds) else repr(self.bounds[i])
                buckets[key] = c
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class ExactCounter(Counter):
    """Counter whose snapshot carries exact partial sums.

    Used by sharded simulations (``MetricsRegistry(exact_sums=True)``):
    the ``_partials`` list in the snapshot lets a merger compute the
    total across shards independently of observation interleaving, so
    ``shards=1`` and ``shards=N`` produce byte-identical merged reports
    even for non-integer increments.  ``value`` stays a plain running
    float for cheap in-sim reads; counters that are *assigned* (the
    kernel flush hooks) rather than incremented snapshot their assigned
    value as a single partial.
    """

    __slots__ = ("partials",)

    def __init__(self, family: "_Family", labels: tuple[tuple[str, str], ...]):
        super().__init__(family, labels)
        self.partials: list[float] = []

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter decrement not allowed: {amount}")
        self.value += amount
        exact_add(self.partials, amount)
        self._touch()

    def _snapshot(self) -> dict:
        parts = self.partials or ([self.value] if self.value else [])
        return {"value": math.fsum(parts), "_partials": list(parts)}


class ExactHistogram(Histogram):
    """Histogram whose snapshot carries exact partial sums (see
    :class:`ExactCounter`)."""

    __slots__ = ("partials",)

    def __init__(self, family: "_Family", labels: tuple[tuple[str, str], ...]):
        super().__init__(family, labels)
        self.partials: list[float] = []

    def observe(self, value: float) -> None:
        super().observe(value)
        exact_add(self.partials, value)

    def set_exact(
        self,
        count: int,
        bucket_counts: list,
        partials: list,
        min_value: Optional[float],
        max_value: Optional[float],
    ) -> None:
        """Wholesale assignment used by deferred kernel flush hooks."""
        self.count = count
        self.bucket_counts = list(bucket_counts)
        self.partials = list(partials)
        self.sum = math.fsum(partials)
        self.min = min_value
        self.max = max_value
        self._touch()

    def _snapshot(self) -> dict:
        snap = super()._snapshot()
        snap["sum"] = math.fsum(self.partials) if self.partials else self.sum
        snap["_partials"] = list(self.partials)
        return snap


#: instrument kind -> exact-sum variant (identity for Gauge)
_EXACT_KINDS: dict[type, type] = {Counter: ExactCounter, Histogram: ExactHistogram}


class _Family:
    """All series sharing one metric name and instrument kind."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: type,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        max_series: int = 1024,
    ):
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.max_series = max_series
        self.series: dict[tuple[tuple[str, str], ...], _Series] = {}

    def labels(self, **labels: object) -> _Series:
        """The series for this exact label set (created on first use)."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self.series.get(key)
        if child is None:
            if len(self.series) >= self.max_series:
                raise LabelCardinalityError(
                    f"{self.name}: more than {self.max_series} label sets; "
                    "a high-cardinality label (request id? sequence number?) "
                    "is being used as a metric dimension"
                )
            child = self.kind(self, key)
            self.series[key] = child
        return child

    def _snapshot(self) -> dict:
        return {
            "type": self.kind.kind_name,
            "series": [
                {"labels": dict(key), **s._snapshot()}
                for key, s in sorted(self.series.items())
            ],
        }


class MetricsRegistry:
    """All metric families of one simulation.

    Families are created lazily by the typed accessors; asking for an
    existing name with a different instrument kind is an error (one name
    means one thing across the whole cluster).
    """

    def __init__(self, time_fn: Callable[[], float], exact_sums: bool = False):
        self.time_fn = time_fn
        self.exact_sums = exact_sums
        self._families: dict[str, _Family] = {}
        self._flush_hooks: list[Callable[[], None]] = []

    def add_flush_hook(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to push deferred hot-path counters into their
        series.  Hooks run (in registration order) before every read —
        :meth:`get`, :meth:`value`, :meth:`snapshot` — so components may
        accumulate in plain ints off the registry and still present
        exact values to every observer.  Hooks must be idempotent."""
        self._flush_hooks.append(fn)

    def flush(self) -> None:
        """Run every registered flush hook."""
        for fn in self._flush_hooks:
            fn()

    def _family(self, name: str, kind: type, **kwargs) -> _Family:
        if self.exact_sums:
            kind = _EXACT_KINDS.get(kind, kind)
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(self, name, kind, **kwargs)
            self._families[name] = fam
        elif fam.kind is not kind:
            raise TypeError(
                f"metric {name!r} is a {fam.kind.__name__}, not a {kind.__name__}"
            )
        return fam

    def counter(self, name: str, help: str = "", max_series: int = 1024) -> _Family:
        """The counter family called ``name``."""
        return self._family(name, Counter, help=help, max_series=max_series)

    def gauge(self, name: str, help: str = "", max_series: int = 1024) -> _Family:
        """The gauge family called ``name``."""
        return self._family(name, Gauge, help=help, max_series=max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        max_series: int = 1024,
    ) -> _Family:
        """The histogram family called ``name``."""
        return self._family(
            name, Histogram, help=help, buckets=tuple(buckets), max_series=max_series
        )

    # -- queries -----------------------------------------------------------

    def get(self, name: str) -> Optional[_Family]:
        """The family called ``name``, if it exists."""
        self.flush()
        return self._families.get(name)

    def names(self) -> list[str]:
        """All family names, sorted."""
        return sorted(self._families)

    def subsystems(self) -> set[str]:
        """First dotted component of every family that has data."""
        return {
            name.split(".", 1)[0]
            for name, fam in self._families.items()
            if fam.series
        }

    def value(self, name: str, **labels: object) -> float:
        """Convenience: current value of one counter/gauge series (0 if
        the family or series does not exist)."""
        self.flush()
        fam = self._families.get(name)
        if fam is None:
            return 0.0
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        series = fam.series.get(key)
        return getattr(series, "value", 0.0) if series is not None else 0.0

    def snapshot(self) -> dict:
        """Deterministic nested-dict snapshot of every non-empty family."""
        self.flush()
        return {
            name: fam._snapshot()
            for name, fam in sorted(self._families.items())
            if fam.series
        }
