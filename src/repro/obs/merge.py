"""Deterministic merging of per-shard observability state.

A sharded simulation (:class:`repro.sim.ShardedSimulator`) gives every
shard kernel its own :class:`MetricsRegistry`, :class:`EventBus`, and
(optionally) :class:`SpanTracer`.  The cluster-level report the user
sees must be *one* deterministic document, byte-identical for
``shards=1`` and ``shards=N`` of the same seed.  Three properties make
that possible:

- **Metrics** are merged from snapshots whose sums are carried as exact
  partial lists (:func:`repro.obs.metrics.exact_add`).  Summing a
  multiset of floats via ``math.fsum`` over concatenated partials is
  independent of both observation order and the shard boundaries the
  observations happened to fall on.
- **Event-bus counts** are plain integer tallies per topic — addition
  is exact and commutative.
- **Spans** carry layout-invariant ids minted from each event's logical
  origin; sorting the union by ``span_id`` erases per-shard recording
  order.

Merging a single shard's state through these functions is the identity
up to that same canonicalization, which is exactly how the ``shards=1``
reference run is produced.

The multiprocessing executor (:mod:`repro.sim.shard_mp`) feeds this
same merge with snapshots collected from worker processes, so
``workers=N`` inherits the byte-identity guarantee for free: the merge
sees the same exact-sum partials regardless of which process produced
them.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = [
    "merge_metric_snapshots",
    "merge_event_counts",
    "merge_span_snapshots",
    "gauge_divergences",
]


def _series_key(series: dict) -> tuple:
    return tuple(sorted(series["labels"].items()))


def _partials_of(series: dict, scalar_field: str) -> list[float]:
    parts = series.get("_partials")
    if parts is None:  # plain (non-exact) snapshot: treat as one partial
        value = series.get(scalar_field)
        return [value] if value else []
    return list(parts)


def _merge_counter(acc: dict, series: dict) -> None:
    acc["partials"].extend(_partials_of(series, "value"))


def _merge_gauge(acc: dict, series: dict, name: str) -> None:
    if acc["value"] != series["value"]:
        raise ValueError(
            f"gauge {name}{dict(series['labels'])} diverged across shards: "
            f"{acc['value']} != {series['value']}"
        )


def _merge_histogram(acc: dict, series: dict) -> None:
    acc["count"] += series["count"]
    acc["partials"].extend(_partials_of(series, "sum"))
    for bound, n in series["buckets"].items():
        acc["buckets"][bound] = acc["buckets"].get(bound, 0) + n
    for field, pick in (("min", min), ("max", max)):
        v = series[field]
        if v is not None:
            cur = acc[field]
            acc[field] = v if cur is None else pick(cur, v)


def merge_metric_snapshots(snapshots: Sequence[dict]) -> dict:
    """Combine per-shard ``MetricsRegistry.snapshot()`` dicts.

    Series are matched by (family name, label set).  Counters and
    histogram sums are recomputed from exact partials; gauges must agree
    wherever they are replicated (a disagreement means shard state
    diverged and is raised loudly); histogram buckets/counts/min/max
    combine exactly.  Internal ``_partials`` fields are consumed and do
    not appear in the merged output.
    """
    families: dict[str, dict] = {}
    for snap in snapshots:
        for name, fam in snap.items():
            merged = families.get(name)
            if merged is None:
                merged = families[name] = {"type": fam["type"], "series": {}}
            elif merged["type"] != fam["type"]:
                raise ValueError(
                    f"metric {name!r} has conflicting types across shards: "
                    f"{merged['type']} != {fam['type']}"
                )
            for series in fam["series"]:
                key = _series_key(series)
                acc = merged["series"].get(key)
                if acc is None:
                    if fam["type"] == "counter":
                        acc = {"partials": _partials_of(series, "value")}
                    elif fam["type"] == "gauge":
                        acc = {"value": series["value"]}
                    else:
                        acc = {
                            "count": series["count"],
                            "partials": _partials_of(series, "sum"),
                            "min": series["min"],
                            "max": series["max"],
                            "buckets": dict(series["buckets"]),
                        }
                    merged["series"][key] = acc
                elif fam["type"] == "counter":
                    _merge_counter(acc, series)
                elif fam["type"] == "gauge":
                    _merge_gauge(acc, series, name)
                else:
                    _merge_histogram(acc, series)
    out: dict[str, dict] = {}
    for name in sorted(families):
        fam = families[name]
        series_out = []
        for key in sorted(fam["series"]):
            acc = fam["series"][key]
            entry: dict = {"labels": dict(key)}
            if fam["type"] == "counter":
                entry["value"] = math.fsum(acc["partials"])
            elif fam["type"] == "gauge":
                entry["value"] = acc["value"]
            else:
                entry.update(
                    count=acc["count"],
                    sum=math.fsum(acc["partials"]),
                    min=acc["min"],
                    max=acc["max"],
                    buckets=acc["buckets"],
                )
            series_out.append(entry)
        out[name] = {"type": fam["type"], "series": series_out}
    return out


def gauge_divergences(snapshots: Sequence[dict]) -> list[tuple]:
    """Collect every replicated-gauge disagreement across shard snapshots.

    Where :func:`merge_metric_snapshots` raises on the *first* diverged
    gauge (merging must not proceed), the happens-before sanitizer wants
    the complete list as findings.  Returns ``(name, labels, values)``
    tuples — ``values`` being the per-shard value list in shard order —
    sorted by (name, labels) for deterministic reports.  Empty means
    every replicated gauge agrees.
    """
    seen: dict[tuple, list] = {}
    for snap in snapshots:
        for name, fam in snap.items():
            if fam["type"] != "gauge":
                continue
            for series in fam["series"]:
                key = (name, _series_key(series))
                seen.setdefault(key, []).append(series["value"])
    out = []
    for (name, labels), values in sorted(seen.items()):
        if len(values) > 1 and any(v != values[0] for v in values[1:]):
            out.append((name, dict(labels), values))
    return out


def merge_event_counts(counts: Sequence[dict]) -> dict:
    """Sum per-shard ``EventBus.topic_counts()`` dicts (sorted topics)."""
    merged: dict[str, int] = {}
    for one in counts:
        for topic, n in one.items():
            merged[topic] = merged.get(topic, 0) + n
    return {topic: merged[topic] for topic in sorted(merged)}


def merge_span_snapshots(snapshots: Sequence[Optional[dict]]) -> dict:
    """Combine per-shard ``SpanTracer.snapshot()`` dicts.

    Spans are unioned and sorted by ``span_id`` (layout-invariant by
    construction); "open" lists are deduplicated because serial sharded
    tracers share one open-span table.
    """
    present = [s for s in snapshots if s is not None]
    spans = sorted(
        (span for snap in present for span in snap["spans"]),
        key=lambda d: d["span_id"],
    )
    return {
        "spans": spans,
        "open": sorted({sid for snap in present for sid in snap["open"]}),
        "n_spans": len(spans),
        "n_dropped": sum(snap["n_dropped"] for snap in present),
        "traces": sorted({span["trace_id"] for span in spans}),
    }
