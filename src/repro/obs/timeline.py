"""Protocol timeline reconstruction from bus events.

The paper presents two signature pictures of protocol behaviour:

- **Fig. 6** — the consistent-history channel protocol: both endpoints
  of a path publish *identical* Up/Down transition histories, within the
  configured slack.
- **Fig. 9** — the membership token's path around the ring, including
  exclusions, regenerations, and 911 recovery.

This module rebuilds both directly from the observability bus, with no
per-subsystem wiring: a :class:`TimelineRecorder` subscribes to the
``channel.monitor.transition`` and ``membership.node.*`` topics, and the
pure functions below turn the captured events into per-path transition
histories and a chronological token timeline, renderable as text or
serialisable as canonical JSON.

Everything here is deterministic: event order is publish order (itself
simulation-event order), and every grouping is sorted before rendering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

from .bus import Event

if TYPE_CHECKING:  # pragma: no cover
    from . import Observability

__all__ = [
    "TimelineRecorder",
    "channel_timelines",
    "token_timeline",
    "token_path",
    "render_channel_timelines",
    "render_token_timeline",
    "timelines_to_dict",
]

#: membership event kinds that appear on the token timeline, in the
#: order they should sort when simultaneous (regen before the adoption
#: it causes is already guaranteed by publish order; this is only doc).
TOKEN_KINDS = (
    "token",
    "regen",
    "excluded",
    "view",
    "solo",
    "abandon",
    "join_added",
    "accept",
)


class TimelineRecorder:
    """Captures the bus traffic the timeline reconstructions need.

    Install *before* running the scenario::

        rec = TimelineRecorder(sim.obs)
        ... run simulation ...
        print(render_token_timeline(token_timeline(rec.membership_events)))

    The recorder holds plain event lists; call :meth:`close` to detach
    from the bus (e.g. before a measurement phase that should keep the
    no-subscriber fast path).
    """

    def __init__(self, obs: "Observability"):
        self.obs = obs
        self.channel_events: list[Event] = []
        self.membership_events: list[Event] = []
        obs.bus.subscribe("channel.monitor.transition", self.channel_events.append)
        obs.bus.subscribe("membership.node.*", self.membership_events.append)

    def close(self) -> None:
        """Detach from the bus; captured events remain available."""
        self.obs.bus.unsubscribe(
            "channel.monitor.transition", self.channel_events.append
        )
        self.obs.bus.unsubscribe("membership.node.*", self.membership_events.append)


# -- Fig. 6: consistent-history channel timelines ---------------------------


def channel_timelines(events: Iterable[Event]) -> dict[str, list[dict]]:
    """Group ``channel.monitor.transition`` events into per-path histories.

    Returns ``{path: [{"time", "view", "index"}, ...]}`` with paths in
    sorted order and each history in publish (= simulation) order.  The
    path name is the monitor's machine name, ``"{host}.nic{i}->{peer}.nic{j}"``
    — so the two endpoints of one physical path appear as two entries
    whose transition sequences the Fig. 6 property says must agree.
    """
    by_path: dict[str, list[dict]] = {}
    for ev in events:
        path = ev.data.get("path")
        if path is None:
            continue
        by_path.setdefault(path, []).append(
            {"time": ev.time, "view": ev.data.get("view"), "index": ev.data.get("index")}
        )
    return {path: by_path[path] for path in sorted(by_path)}


def render_channel_timelines(timelines: dict[str, list[dict]]) -> str:
    """Fig. 6-style text: one line per path endpoint, transitions inline."""
    if not timelines:
        return "(no channel transitions recorded)"
    width = max(len(p) for p in timelines)
    lines = ["== consistent-history channel timelines (Fig. 6) =="]
    for path, history in timelines.items():
        steps = "  ".join(
            f"#{h['index']} {h['view']}@{h['time']:.3f}" for h in history
        )
        lines.append(f"{path:<{width}}  {steps}")
    return "\n".join(lines)


# -- Fig. 9: token path and regeneration timeline ---------------------------


def token_timeline(
    events: Iterable[Event], kinds: Optional[Iterable[str]] = None
) -> list[dict]:
    """Flatten ``membership.node.*`` events into a chronological timeline.

    Each entry is ``{"time", "node", "kind", "subject"}``; ``kind`` is
    the topic suffix (``token``, ``regen``, ``excluded``, ...).  ``kinds``
    restricts the result (default: :data:`TOKEN_KINDS`).  Order is
    publish order, which on a deterministic simulation is reproducible.
    """
    wanted = frozenset(kinds if kinds is not None else TOKEN_KINDS)
    out: list[dict] = []
    for ev in events:
        kind = ev.topic.rsplit(".", 1)[-1]
        if kind not in wanted:
            continue
        subject = ev.data.get("subject")
        if not isinstance(subject, (str, int, float, type(None))):
            subject = str(subject)
        out.append(
            {"time": ev.time, "node": ev.data.get("node"), "kind": kind, "subject": subject}
        )
    return out


def token_path(timeline: Iterable[dict]) -> list[str]:
    """The sequence of nodes the token visited (consecutive holders).

    Consecutive duplicate holders collapse to one hop, so the result
    reads as the Fig. 9 ring walk: ``["node0", "node1", ...]``.
    """
    path: list[str] = []
    for entry in timeline:
        if entry["kind"] != "token":
            continue
        node = entry["node"]
        if not path or path[-1] != node:
            path.append(node)
    return path


def render_token_timeline(timeline: list[dict]) -> str:
    """Fig. 9-style text: chronological token/regeneration events."""
    if not timeline:
        return "(no membership events recorded)"
    lines = ["== token path / regeneration timeline (Fig. 9) =="]
    for entry in timeline:
        subject = "" if entry["subject"] is None else f"  {entry['subject']}"
        lines.append(
            f"[{entry['time']:12.6f}] {entry['node']:<10} {entry['kind']:<10}{subject}"
        )
    hops = token_path(timeline)
    if hops:
        lines.append(f"token path: {' -> '.join(hops)}")
    return "\n".join(lines)


# -- canonical JSON ---------------------------------------------------------


def timelines_to_dict(
    channel_events: Iterable[Event], membership_events: Iterable[Event]
) -> dict[str, Any]:
    """Both reconstructions as one JSON-ready dict (sorted, stable)."""
    timeline = token_timeline(membership_events)
    return {
        "channels": channel_timelines(channel_events),
        "token_events": timeline,
        "token_path": token_path(timeline),
    }
