"""Pub/sub event bus for structured simulation events.

Components ``publish`` timestamped :class:`Event` records under dotted
topics (``membership.node.regen``, ``channel.monitor.transition``);
tests, benchmarks, and other subsystems ``subscribe`` by exact topic or
by prefix (``"membership.*"``).  The bus always counts events per topic
— cheap enough to leave on — but retains event *objects* only for
subscribers, so an unobserved simulation does not accumulate memory.

This subsumes the old :class:`repro.sim.Tracer` attachment pattern:
``Tracer`` is now a shim that republishes its records here (see
:mod:`repro.sim.trace`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Event", "EventBus", "EventRing"]


def _prefix_key(pattern: str) -> str:
    """Canonical prefix stored for a wildcard pattern.

    Exactly one trailing ``*`` is stripped, so ``"a.*"`` → ``"a."`` and
    ``"a.**"`` → ``"a.*"``.  Subscribe and unsubscribe must agree on
    this key or removals silently miss and ``_n_subs`` stays inflated,
    defeating the :attr:`EventBus.has_subscribers` short-circuit.
    """
    return pattern[:-1]


@dataclass(frozen=True)
class Event:
    """One timestamped structured event."""

    time: float
    topic: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" {self.data}" if self.data else ""
        return f"[{self.time:12.6f}] {self.topic}{extra}"


class EventBus:
    """Topic-based publish/subscribe with per-topic counting."""

    def __init__(self, time_fn: Callable[[], float]):
        self.time_fn = time_fn
        self._counts: dict[str, int] = {}
        self._exact: dict[str, list[Callable[[Event], None]]] = {}
        self._prefix: list[tuple[str, Callable[[Event], None]]] = []
        self._all: list[Callable[[Event], None]] = []
        self._n_subs = 0

    # -- publishing --------------------------------------------------------

    @property
    def has_subscribers(self) -> bool:
        """True when at least one subscription (of any pattern) is live.

        Hot publishers use this to skip building expensive ``data``
        payloads (rendered messages, copies) for an unobserved bus."""
        return self._n_subs > 0

    def publish(self, topic: str, **data: object) -> Optional[Event]:
        """Emit an event under ``topic``; returns it when anyone listened."""
        counts = self._counts
        counts[topic] = counts.get(topic, 0) + 1
        if not self._n_subs:
            # Fast path: nothing subscribed anywhere — count and bail
            # before constructing the Event or the target list.
            return None
        subs = self._exact.get(topic)
        targets = list(subs) if subs else []
        if self._prefix:
            targets.extend(fn for p, fn in self._prefix if topic.startswith(p))
        targets.extend(self._all)
        if not targets:
            return None
        ev = Event(self.time_fn(), topic, data)
        for fn in targets:
            fn(ev)
        return ev

    # -- subscribing -------------------------------------------------------

    def subscribe(self, pattern: str, fn: Callable[[Event], None]) -> None:
        """Call ``fn(event)`` for every matching publish.

        ``pattern`` is an exact topic, a prefix wildcard like
        ``"membership.*"`` (matches any topic starting with
        ``"membership."``), or ``"*"`` for everything.
        """
        if pattern == "*":
            self._all.append(fn)
        elif pattern.endswith("*"):
            self._prefix.append((_prefix_key(pattern), fn))
        else:
            self._exact.setdefault(pattern, []).append(fn)
        self._n_subs += 1

    def unsubscribe(self, pattern: str, fn: Callable[[Event], None]) -> None:
        """Remove a subscription added with the same arguments (no-op if
        absent)."""
        try:
            if pattern == "*":
                self._all.remove(fn)
            elif pattern.endswith("*"):
                self._prefix.remove((_prefix_key(pattern), fn))
            else:
                self._exact.get(pattern, []).remove(fn)
        except ValueError:
            return  # nothing removed; subscriber count unchanged
        self._n_subs -= 1

    def record(self, pattern: str = "*") -> list[Event]:
        """Subscribe a fresh list that accumulates matching events.

        The returned list grows as events are published — the idiom for
        tests: ``transitions = bus.record("channel.*")``.
        """
        events: list[Event] = []
        self.subscribe(pattern, events.append)
        return events

    # -- queries -----------------------------------------------------------

    def count(self, topic: str) -> int:
        """How many events have been published under exactly ``topic``."""
        return self._counts.get(topic, 0)

    def topic_counts(self, prefix: str = "") -> dict[str, int]:
        """Per-topic publish counts (optionally filtered), sorted."""
        return {
            t: n
            for t, n in sorted(self._counts.items())
            if t.startswith(prefix)
        }

    def subsystems(self) -> tuple[str, ...]:
        """First dotted component of every published topic, sorted.

        Sorted tuple (not a raw set) so callers iterating it into
        reports stay deterministic (rainlint RL004).
        """
        return tuple(sorted({t.split(".", 1)[0] for t in self._counts}))


class EventRing:
    """A bounded, sequence-numbered tail of bus events for pull consumers.

    The control plane's ``GET /api/events?since=`` endpoint (and anything
    else that polls rather than subscribes) needs the *recent* event
    stream without letting an unread backlog grow with the simulation.
    An ``EventRing`` subscribes to one or more buses and keeps the last
    ``capacity`` matching events in a ring; each event gets a
    monotonically increasing sequence number, so a consumer resumes from
    its cursor with :meth:`since` and can detect gaps via
    :attr:`dropped` (how many events were overwritten before anyone
    read them).

    Multiple buses may share one ring (one per shard kernel in a sharded
    simulation): :meth:`attach` subscribes an additional bus under the
    same sequence counter, tagging each entry with the bus's label.
    """

    def __init__(self, bus=None, pattern: str = "*", capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: deque = deque(maxlen=capacity)
        self._next_seq = 0
        self._dropped = 0
        self._subs: list[tuple[EventBus, str, Callable[[Event], None]]] = []
        if bus is not None:
            self.attach(bus, pattern=pattern)

    def attach(self, bus: EventBus, pattern: str = "*", label: Optional[str] = None):
        """Subscribe ``bus`` into this ring (shared sequence counter)."""

        def record(ev: Event, _label=label) -> None:
            if len(self._buf) == self.capacity:
                self._dropped += 1
            self._buf.append((self._next_seq, _label, ev))
            self._next_seq += 1

        bus.subscribe(pattern, record)
        self._subs.append((bus, pattern, record))
        return self

    def close(self) -> None:
        """Unsubscribe from every attached bus."""
        for bus, pattern, fn in self._subs:
            bus.unsubscribe(pattern, fn)
        self._subs.clear()

    # -- queries -----------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next recorded event will get."""
        return self._next_seq

    @property
    def dropped(self) -> int:
        """Events overwritten before being visible to any reader."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._buf)

    def since(self, seq: int = -1) -> list[tuple[int, Optional[str], Event]]:
        """Retained ``(seq, label, event)`` entries with ``seq > seq``.

        ``-1`` (the default) returns the whole retained tail.  Entries
        older than the ring's capacity are gone; callers comparing the
        first returned seq against their cursor + 1 can detect the gap.
        """
        return [entry for entry in self._buf if entry[0] > seq]
