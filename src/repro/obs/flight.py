"""Flight recorder: bounded event ring buffer + crash reports.

A :class:`FlightRecorder` subscribes to the whole event bus (``"*"``)
and keeps the last ``capacity`` events in a fixed-size deque — the
"black box" of a simulation.  Memory is bounded no matter how long the
run; the cost per event is one deque append.

When something goes wrong — a membership invariant trips, a scenario
raises — :meth:`dump` produces a deterministic crash report: the
recent-event window plus every span still open in the tracer (the
operations that were *in flight* when the failure hit).  The pytest
plugin in ``tests/conftest.py`` attaches these reports to failing
tier-1 tests.

Reports are canonical (sorted keys, id-ordered spans), so two same-seed
runs of the same failure produce byte-identical dumps — diffable like
the golden traces.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Optional

from .bus import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from . import Observability

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Last-N event window over the bus, dumpable as a crash report."""

    def __init__(self, obs: "Observability", capacity: int = 512):
        self.obs = obs
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self.n_seen = 0
        obs.bus.subscribe("*", self._on_event)

    def _on_event(self, ev: Event) -> None:
        self.n_seen += 1
        self._ring.append(ev)

    def close(self) -> None:
        """Detach from the bus (restores the no-subscriber fast path)."""
        self.obs.bus.unsubscribe("*", self._on_event)

    def events(self) -> list[Event]:
        """The retained window, oldest first."""
        return list(self._ring)

    # -- crash reports -----------------------------------------------------

    def dump(self, reason: str, **detail: object) -> dict:
        """Build a deterministic crash report.

        ``reason`` labels why the dump was taken (``"invariant"``,
        ``"exception"``, ``"test-failure"``); ``detail`` carries
        structured context (e.g. the violation strings).
        """
        tracer = self.obs.tracer
        report = {
            "reason": reason,
            "detail": {k: detail[k] for k in sorted(detail)},
            "time": self.obs.time_fn(),
            "events": [
                {"time": ev.time, "topic": ev.topic, "data": dict(ev.data)}
                for ev in self._ring
            ],
            "n_events_seen": self.n_seen,
            "n_events_retained": len(self._ring),
            "open_spans": (
                [s.to_dict() for s in tracer.open_spans()] if tracer else []
            ),
        }
        return report

    def dump_json(self, reason: str, **detail: object) -> str:
        """:meth:`dump` serialized canonically (byte-stable per seed)."""
        return (
            json.dumps(self.dump(reason, **detail), indent=2, sort_keys=True, default=str)
            + "\n"
        )

    def check_membership(self, nodes, require_agreement: bool = True) -> Optional[dict]:
        """Run the membership invariant checker; dump on violation.

        Returns the crash report dict when an invariant tripped, else
        ``None``.  The import is local: :mod:`repro.obs` must stay
        importable without the rest of the stack.
        """
        from ..membership.invariants import check_invariants

        report = check_invariants(nodes, require_agreement=require_agreement)
        if report.ok:
            return None
        return self.dump("invariant", violations=list(report.violations))
