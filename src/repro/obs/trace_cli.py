"""``python -m repro trace`` — run a scenario under the span tracer and
reconstruct its protocol timelines.

Two packaged scenarios:

- ``token`` — a 5-node cluster that converges, loses a node, and heals
  via the 911 mechanism; the Fig. 6 channel histories and Fig. 9 token
  timeline fall out of the bus traffic.
- ``write`` — a RAINfs write/read fan-out over a 6-node cluster; the
  interesting artifact is the causal trace tree (one ``fs.write`` root
  spanning prepare/commit RPCs, storage stores, RUDP segments, packets).

Output formats: ``text`` (human timelines + trace summary), ``json``
(canonical sorted JSON of timelines + span snapshot), ``chrome``
(Chrome trace-event JSON; load in Perfetto via ui.perfetto.dev).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["add_trace_parser", "cmd_trace", "TRACE_SCENARIOS", "run_trace_scenario"]


def _scenario_token(seed: int):
    """Token circulation with a crash/recover cycle (Figs. 6 and 9)."""
    from repro import ClusterConfig, RainCluster, Simulator

    sim = Simulator(seed=seed)
    sim.obs.install_tracer()
    from .timeline import TimelineRecorder

    rec = TimelineRecorder(sim.obs)
    cluster = RainCluster(sim, ClusterConfig(nodes=5))
    sim.run(until=3.0)
    cluster.crash(2)
    sim.run(until=10.0)
    cluster.recover(2)
    sim.run(until=25.0)
    return sim, rec


def _scenario_write(seed: int):
    """RAINfs write + degraded read fan-out (causal trace tree)."""
    from repro import ClusterConfig, RainCluster, Simulator
    from repro.codes import BCode
    from repro.fs import RainFsNode

    sim = Simulator(seed=seed)
    sim.obs.install_tracer()
    from .timeline import TimelineRecorder

    rec = TimelineRecorder(sim.obs)
    cluster = RainCluster(sim, ClusterConfig(nodes=6))
    fs = [
        RainFsNode(cluster.member(i), cluster.elections[i], cluster.store_on(i, BCode(6)))
        for i in range(6)
    ]
    sim.run(until=2.0)

    def script():
        data = b"computing in the RAIN " * 200
        yield from fs[0].write("/trace-demo.bin", data)
        out = yield from fs[1].read("/trace-demo.bin")
        assert out == data

    sim.run_process(script(), until=sim.now + 60)
    return sim, rec


TRACE_SCENARIOS = {
    "token": _scenario_token,
    "write": _scenario_write,
}


def run_trace_scenario(name: str, seed: int):
    """Run a packaged scenario; returns ``(sim, TimelineRecorder)``."""
    sim, rec = TRACE_SCENARIOS[name](seed)
    rec.close()
    return sim, rec


def _render_text(sim, rec) -> str:
    from .timeline import (
        channel_timelines,
        render_channel_timelines,
        render_token_timeline,
        token_timeline,
    )

    tracer = sim.obs.tracer
    parts = [
        render_channel_timelines(channel_timelines(rec.channel_events)),
        "",
        render_token_timeline(token_timeline(rec.membership_events)),
        "",
        "== trace summary ==",
        f"spans: {len(tracer.spans)}  open: {len(tracer.open_spans())}  "
        f"traces: {len(tracer.trace_ids())}  dropped: {tracer.n_dropped}",
    ]
    by_name: dict[str, int] = {}
    for span in tracer.spans:
        by_name[span.name] = by_name.get(span.name, 0) + 1
    for name in sorted(by_name):
        parts.append(f"  {name:<24} {by_name[name]:>6}")
    return "\n".join(parts)


def _render_json(sim, rec) -> str:
    from .timeline import timelines_to_dict

    payload = {
        "timelines": timelines_to_dict(rec.channel_events, rec.membership_events),
        "trace": sim.obs.tracer.snapshot(),
    }
    return json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"


def add_trace_parser(sub) -> None:
    p = sub.add_parser(
        "trace",
        help="run a scenario under the span tracer and print its timelines",
    )
    p.add_argument(
        "scenario",
        nargs="?",
        default="token",
        choices=sorted(TRACE_SCENARIOS),
        help="workload to trace (default: token circulation with a crash)",
    )
    p.add_argument("--seed", type=int, default=7, help="simulation seed")
    p.add_argument(
        "--format",
        choices=("text", "json", "chrome"),
        default="text",
        help="text timelines, canonical JSON, or Chrome trace-event JSON",
    )
    p.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the output to a file instead of stdout",
    )


def cmd_trace(args) -> int:
    sim, rec = run_trace_scenario(args.scenario, args.seed)
    if args.format == "text":
        out = _render_text(sim, rec)
        if not out.endswith("\n"):
            out += "\n"
    elif args.format == "json":
        out = _render_json(sim, rec)
    else:
        from .tracing import validate_chrome_trace

        doc = sim.obs.tracer.to_chrome_trace()
        problems = validate_chrome_trace(doc)
        if problems:  # pragma: no cover - structural self-check
            for p in problems:
                print(f"invalid chrome trace: {p}", file=sys.stderr)
            return 1
        out = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(out)
        print(f"{args.format} trace written to {args.out}")
    else:
        sys.stdout.write(out)
    return 0
