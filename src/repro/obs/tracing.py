"""Deterministic causal span tracing over the observability hub.

The paper judges every protocol by its *causal story*: the identical
Up/Down sequences both endpoints of a channel must see (Fig. 6), the
path the membership token takes around the ring and its 911
regenerations (Fig. 9), the fan-out of a striped write across storage
nodes (Sec. 4).  Flat counters cannot tell those stories — nothing in a
metrics snapshot links a packet on a link to the RUDP retry to the
membership transition it caused.  This module adds the missing layer:

- :class:`SpanContext` — an immutable ``(trace_id, span_id)`` pair that
  protocol layers carry in their message headers (packet fields, RUDP
  segments, the membership token, storage requests);
- :class:`Span` — one timed operation with a parent link, forming trees
  whose roots are token lineages, file operations, or MPI collectives;
- :class:`SpanTracer` — the per-simulation recorder.  Ids are minted
  from a plain counter and times come from the simulator's virtual
  clock, so two same-seed runs produce byte-identical traces (no wall
  clock, no global RNG, no ``id()``).

A tracer is *opt-in*: ``sim.obs.install_tracer()`` attaches one, and
every instrumentation site guards on ``sim.obs.tracer is None`` so an
untraced simulation pays one attribute load per site — the same
discipline as :attr:`EventBus.has_subscribers`.

Exports: :meth:`SpanTracer.to_chrome_trace` emits Chrome trace-event
JSON loadable in Perfetto / ``chrome://tracing`` (one process per trace,
one thread lane per node), and :meth:`SpanTracer.snapshot` /
:meth:`SpanTracer.to_json` produce a canonical sorted form for golden
tests.  :func:`validate_chrome_trace` is the minimal schema check CI
runs on exported artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator, Optional, Union

__all__ = [
    "Span",
    "SpanContext",
    "SpanTracer",
    "validate_chrome_trace",
]


class SpanContext(tuple):
    """Immutable propagation handle: ``(trace_id, span_id)``.

    This is what rides in message headers.  It is a tuple subclass (not
    a dataclass) so copies are free and equality/hashing are structural.
    """

    __slots__ = ()

    def __new__(cls, trace_id: int, span_id: int) -> "SpanContext":
        return tuple.__new__(cls, (trace_id, span_id))

    def __getnewargs__(self) -> tuple:
        # Contexts ride in packet headers, which sharded simulations
        # pickle across shard boundaries; ``__new__`` takes the two ids
        # positionally, so spell that out for the pickle protocol.
        return (self[0], self[1])

    @property
    def trace_id(self) -> int:
        """Id of the root span's trace this context belongs to."""
        return self[0]

    @property
    def span_id(self) -> int:
        """Id of the span this context points at."""
        return self[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanContext(trace={self[0]}, span={self[1]})"


class Span:
    """One timed, attributed operation in a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "node",
        "start",
        "end",
        "status",
        "attrs",
        "shard",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        node: Optional[str],
        start: float,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None  # None while open
        self.status: Optional[str] = None  # "ok" | "error" | ... once ended
        self.attrs: dict[str, Any] = {}
        # Which shard kernel minted the span (None in unsharded runs).
        # Deliberately *excluded* from to_dict(): exports must be
        # byte-identical regardless of how the cluster was sharded.
        self.shard: Optional[int] = None

    @property
    def ctx(self) -> SpanContext:
        """The propagation handle pointing at this span."""
        return SpanContext(self.trace_id, self.span_id)

    @property
    def open(self) -> bool:
        """Whether the span has not been ended yet."""
        return self.end is None

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (attrs sorted by key)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.open else f"end={self.end:g} {self.status}"
        return f"<span #{self.span_id} {self.name} t={self.start:g} {state}>"


ParentLike = Union[SpanContext, Span, None]


class _Activation:
    """Context manager returned by :meth:`SpanTracer.activate`."""

    __slots__ = ("_tracer", "_ctx")

    def __init__(self, tracer: "SpanTracer", ctx: Optional[SpanContext]):
        self._tracer = tracer
        self._ctx = ctx

    def __enter__(self) -> Optional[SpanContext]:
        self._tracer._stack.append(self._ctx)
        return self._ctx

    def __exit__(self, *exc) -> None:
        self._tracer._stack.pop()


class SpanTracer:
    """Deterministic span recorder for one simulation.

    Parameters
    ----------
    time_fn:
        Supplies the current *simulated* time (the hub passes
        ``lambda: sim.now``).
    max_spans:
        Hard cap on retained spans; once reached, further starts are
        counted in :attr:`n_dropped` but not recorded, so a runaway
        scenario cannot exhaust memory.
    """

    def __init__(self, time_fn: Callable[[], float], max_spans: int = 200_000):
        self.time_fn = time_fn
        self.max_spans = max_spans
        #: optional span-id mint override.  A sharded kernel installs a
        #: function returning layout-invariant ids (derived from the
        #: logical origin of the current event, not from arrival order)
        #: so traces merge byte-identically across shard counts.
        self.id_fn: Optional[Callable[[], int]] = None
        #: shard rank stamped (off-export) onto minted spans
        self.shard: Optional[int] = None
        self.spans: list[Span] = []  # in start order
        self.n_dropped = 0
        self._open: dict[int, Span] = {}
        self._by_id: dict[int, Span] = {}
        self._next_id = 1
        # The activation stack: entries are the "current" SpanContext.
        # The simulation is single-threaded, so a plain list suffices;
        # the kernel pushes a process's carried context around each
        # resumption and message dispatchers push the inbound context
        # around handler calls.
        self._stack: list[Optional[SpanContext]] = []

    # -- creation ----------------------------------------------------------

    @property
    def current(self) -> Optional[SpanContext]:
        """The innermost active context (None outside any activation)."""
        return self._stack[-1] if self._stack else None

    def activate(self, ctx: Optional[SpanContext]) -> _Activation:
        """Context manager making ``ctx`` the current context."""
        return _Activation(self, ctx)

    def _resolve_parent(self, parent: ParentLike) -> Optional[SpanContext]:
        if parent is None:
            return self.current
        if isinstance(parent, Span):
            return parent.ctx
        return parent

    def start(
        self,
        name: str,
        parent: ParentLike = None,
        node: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; ``parent=None`` inherits the current context.

        A span with no parent (explicit or ambient) roots a new trace
        whose ``trace_id`` is its own ``span_id``.
        """
        pctx = self._resolve_parent(parent)
        if self.id_fn is not None:
            span_id = self.id_fn()
        else:
            span_id = self._next_id
            self._next_id += 1
        if pctx is None:
            trace_id, parent_id = span_id, None
        else:
            trace_id, parent_id = pctx.trace_id, pctx.span_id
        span = Span(trace_id, span_id, parent_id, name, node, self.time_fn())
        span.shard = self.shard
        if attrs:
            span.attrs.update(attrs)
        if len(self.spans) >= self.max_spans:
            self.n_dropped += 1
            span.end = span.start
            span.status = "dropped"
            return span
        self.spans.append(span)
        self._open[span_id] = span
        self._by_id[span_id] = span
        return span

    def end(self, span: Span, status: str = "ok", **attrs: Any) -> None:
        """Close ``span`` at the current time (idempotent)."""
        if span.end is not None:
            return
        span.end = self.time_fn()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._open.pop(span.span_id, None)

    def end_id(self, span_id: int, status: str = "ok", **attrs: Any) -> None:
        """Close the open span with ``span_id`` (no-op if unknown/closed)."""
        span = self._open.get(span_id)
        if span is not None:
            self.end(span, status=status, **attrs)

    def instant(
        self,
        name: str,
        parent: ParentLike = None,
        node: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """A zero-duration span (an event with causal parentage)."""
        span = self.start(name, parent=parent, node=node, **attrs)
        self.end(span)
        return span

    def clear(self) -> None:
        """Drop every recorded span and reset the id counter."""
        self.spans.clear()
        self._open.clear()
        self._by_id.clear()
        self._stack.clear()
        self._next_id = 1
        self.n_dropped = 0

    # -- queries -----------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        """The recorded span with ``span_id``, if any."""
        return self._by_id.get(span_id)

    def open_spans(self) -> list[Span]:
        """Spans started but not ended, in start (= id) order."""
        return [s for s in self.spans if s.end is None]

    def by_name(self, name: str) -> list[Span]:
        """All spans called ``name``, in start order."""
        return [s for s in self.spans if s.name == name]

    def ancestors(self, span: Span) -> Iterator[Span]:
        """The parent chain of ``span``, nearest first."""
        seen = 0
        cur = span
        while cur.parent_id is not None and seen <= len(self.spans):
            parent = self._by_id.get(cur.parent_id)
            if parent is None:
                return
            yield parent
            cur = parent
            seen += 1

    def has_ancestor(self, span: Span, name: str) -> bool:
        """Whether any ancestor of ``span`` is called ``name``."""
        return any(a.name == name for a in self.ancestors(span))

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def trace(self, trace_id: int) -> list[Span]:
        """Every span of one trace, in start order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> list[int]:
        """Sorted ids of all traces with at least one span."""
        return sorted({s.trace_id for s in self.spans})

    # -- canonical snapshot (golden tests) ---------------------------------

    def snapshot(self) -> dict:
        """Deterministic nested-dict form of the whole trace store.

        Spans are listed in id order with sorted attrs; two same-seed
        runs serialize byte-identically.
        """
        return {
            "spans": [s.to_dict() for s in self.spans],
            "open": sorted(self._open),
            "n_spans": len(self.spans),
            "n_dropped": self.n_dropped,
            "traces": self.trace_ids(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON: sorted keys, stable separators."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True, default=str)

    # -- Chrome trace-event export -----------------------------------------

    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event document.

        Load the JSON in Perfetto (ui.perfetto.dev) or
        ``chrome://tracing``: each trace renders as a process, each
        cluster node as a thread lane, spans as complete ("X") events
        with microsecond timestamps (simulated seconds × 1e6).  Open
        spans are exported with zero duration and ``"open": true`` so a
        crash dump still shows what was in flight.
        """
        events: list[dict] = []
        # Thread lanes: node names map to small stable ints, sorted so
        # the mapping is independent of span discovery order.
        nodes = sorted({s.node for s in self.spans if s.node is not None})
        tids = {name: i + 1 for i, name in enumerate(nodes)}
        for trace_id in self.trace_ids():
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": trace_id,
                    "tid": 0,
                    "args": {"name": f"trace {trace_id}"},
                }
            )
            lanes = sorted(
                {s.node for s in self.spans if s.trace_id == trace_id and s.node}
            )
            for lane in lanes:
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": trace_id,
                        "tid": tids[lane],
                        "args": {"name": lane},
                    }
                )
        for s in self.spans:
            end = s.start if s.end is None else s.end
            args: dict[str, Any] = {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "status": s.status if s.status is not None else "open",
            }
            if s.end is None:
                args["open"] = True
            for k in sorted(s.attrs):
                args[k] = s.attrs[k]
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.name.split(".", 1)[0],
                    "pid": s.trace_id,
                    "tid": tids.get(s.node, 0),
                    "ts": s.start * 1e6,
                    "dur": (end - s.start) * 1e6,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_json(self, indent: Optional[int] = 2) -> str:
        """:meth:`to_chrome_trace` serialized canonically."""
        return json.dumps(
            self.to_chrome_trace(), indent=indent, sort_keys=True, default=str
        )


def validate_chrome_trace(doc: object) -> list[str]:
    """Minimal structural schema check for a Chrome trace document.

    Returns a list of human-readable problems (empty when the document
    is well-formed).  This is deliberately dependency-free — CI runs it
    on the exported artifact instead of shipping a jsonschema dep.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "B", "E"):
            problems.append(f"{where}: bad phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ph == "X":
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    problems.append(f"{where}: {key} must be a non-negative number")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems
