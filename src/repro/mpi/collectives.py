"""MPI collective operations.

Implemented as generator methods used with ``yield from`` inside
simulation processes::

    value = yield from comm.bcast(value, root=0)
    total = yield from comm.allreduce(x, op=lambda a, b: a + b)

Broadcast and reduce use binomial trees (⌈log₂ p⌉ rounds); gather,
scatter, and barrier use linear exchanges with the root — matching the
classic MPICH reference algorithms at small scale.  Every collective
consumes one slot of a private tag namespace sequenced per communicator,
so consecutive collectives never cross-match; as in MPI, all ranks must
invoke the same collectives in the same order.

Reduction operators must be associative; reductions are applied in rank
order along the tree, so commutativity is not required for the linear
fallbacks but is recommended for tree reductions.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

__all__ = ["CollectivesMixin"]


class CollectivesMixin:
    """Collective algorithms shared by :class:`repro.mpi.Communicator`."""

    # The mixin relies on: self.rank, self.size, self.sim, self.send,
    # self.recv, self._coll_seq, self._coll_ctx, and the self._m_coll_* /
    # self._coll_series instruments provided by Communicator.

    def _coll_tag(self, name: str) -> tuple:
        self._coll_seq += 1
        return ("__coll__", name, self._coll_seq)

    def _timed(self, name: str, gen: Generator) -> Generator:
        """Wrap a collective: count the call, time it in simulated
        seconds (composite collectives time the whole composition)."""
        series = self._coll_series.get(name)
        if series is None:
            series = (
                self._m_coll_calls.labels(op=name),
                self._m_coll_time.labels(op=name),
            )
            self._coll_series[name] = series
        series[0].inc()
        t0 = self.sim.now
        tracer = self.sim.obs.tracer
        if tracer is None:
            result = yield from gen
        else:
            span = tracer.start(
                "mpi.collective", node=self.host.name, op=name, rank=self.rank
            )
            prev_ctx = self._coll_ctx
            self._coll_ctx = span.ctx
            try:
                result = yield from gen
            finally:
                self._coll_ctx = prev_ctx
                tracer.end(span)
        series[1].observe(self.sim.now - t0)
        return result

    # -- public (timed) entry points -----------------------------------------

    def barrier(self) -> Generator:
        """Block until every rank has entered the barrier."""
        return self._timed("barrier", self._barrier_impl())

    def bcast(self, value: Any, root: int = 0, size_bytes: int = 64) -> Generator:
        """Binomial-tree broadcast; returns the root's value on all ranks."""
        return self._timed("bcast", self._bcast_impl(value, root, size_bytes))

    def gather(self, value: Any, root: int = 0, size_bytes: int = 64) -> Generator:
        """Collect one value per rank at ``root`` (rank order); None elsewhere."""
        return self._timed("gather", self._gather_impl(value, root, size_bytes))

    def scatter(self, values: Any, root: int = 0, size_bytes: int = 64) -> Generator:
        """Distribute ``values[r]`` from the root to each rank ``r``."""
        return self._timed("scatter", self._scatter_impl(values, root, size_bytes))

    def allgather(self, value: Any, size_bytes: int = 64) -> Generator:
        """Gather to rank 0 then broadcast the full list to everyone."""
        return self._timed("allgather", self._allgather_impl(value, size_bytes))

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        size_bytes: int = 64,
    ) -> Generator:
        """Binomial-tree reduction to ``root``; None on other ranks."""
        return self._timed("reduce", self._reduce_impl(value, op, root, size_bytes))

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any], size_bytes: int = 64
    ) -> Generator:
        """Reduce to rank 0, then broadcast the result."""
        return self._timed("allreduce", self._allreduce_impl(value, op, size_bytes))

    def scan(
        self, value: Any, op: Callable[[Any, Any], Any], size_bytes: int = 64
    ) -> Generator:
        """Inclusive prefix reduction: rank r gets op(v_0, ..., v_r)."""
        return self._timed("scan", self._scan_impl(value, op, size_bytes))

    def alltoall(self, values: Any, size_bytes: int = 64) -> Generator:
        """Personalized exchange: rank i sends ``values[j]`` to rank j."""
        return self._timed("alltoall", self._alltoall_impl(values, size_bytes))

    # -- barrier -------------------------------------------------------------

    def _barrier_impl(self) -> Generator:
        """Block until every rank has entered the barrier."""
        tag = self._coll_tag("barrier")
        # linear: everyone checks in with rank 0, then 0 releases everyone
        if self.rank == 0:
            for _ in range(self.size - 1):
                yield self.recv(tag=(tag, "in"))
            for r in range(1, self.size):
                self.send(None, dest=r, tag=(tag, "out"))
        else:
            self.send(None, dest=0, tag=(tag, "in"))
            yield self.recv(source=0, tag=(tag, "out"))
        return None

    # -- broadcast -----------------------------------------------------------

    def _bcast_impl(self, value: Any, root: int = 0, size_bytes: int = 64) -> Generator:
        """Binomial-tree broadcast; returns the root's value on all ranks."""
        tag = self._coll_tag("bcast")
        size = self.size
        rrank = (self.rank - root) % size
        mask = 1
        # receive phase: wait for the parent (ranks other than root)
        while mask < size:
            if rrank < mask:
                break
            if rrank < 2 * mask:
                parent = (rrank - mask + root) % size
                msg = yield self.recv(source=parent, tag=tag)
                value = msg.data
                break
            mask <<= 1
        # send phase: forward down the tree
        while mask < size:
            if rrank < mask and rrank + mask < size:
                child = (rrank + mask + root) % size
                self.send(value, dest=child, tag=tag, size_bytes=size_bytes)
            mask <<= 1
        return value

    # -- gather / scatter ------------------------------------------------------

    def _gather_impl(self, value: Any, root: int = 0, size_bytes: int = 64) -> Generator:
        """Collect one value per rank at ``root`` (rank order); None elsewhere."""
        tag = self._coll_tag("gather")
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = value
            for _ in range(self.size - 1):
                msg = yield self.recv(tag=tag)
                out[msg.source] = msg.data
            return out
        self.send(value, dest=root, tag=tag, size_bytes=size_bytes)
        return None

    def _scatter_impl(self, values: Any, root: int = 0, size_bytes: int = 64) -> Generator:
        """Distribute ``values[r]`` from the root to each rank ``r``."""
        tag = self._coll_tag("scatter")
        if self.rank == root:
            if len(values) != self.size:
                raise ValueError(
                    f"scatter needs exactly {self.size} values, got {len(values)}"
                )
            for r in range(self.size):
                if r != root:
                    self.send(values[r], dest=r, tag=tag, size_bytes=size_bytes)
            return values[root]
        msg = yield self.recv(source=root, tag=tag)
        return msg.data

    def _allgather_impl(self, value: Any, size_bytes: int = 64) -> Generator:
        """Gather to rank 0 then broadcast the full list to everyone."""
        gathered = yield from self._gather_impl(value, root=0, size_bytes=size_bytes)
        result = yield from self._bcast_impl(gathered, root=0, size_bytes=size_bytes * self.size)
        return result

    # -- reductions --------------------------------------------------------

    def _reduce_impl(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        size_bytes: int = 64,
    ) -> Generator:
        """Binomial-tree reduction to ``root``; None on other ranks."""
        tag = self._coll_tag("reduce")
        size = self.size
        rrank = (self.rank - root) % size
        acc = value
        mask = 1
        while mask < size:
            if rrank & mask:
                parent = ((rrank & ~mask) + root) % size
                self.send(acc, dest=parent, tag=(tag, rrank), size_bytes=size_bytes)
                return None
            child_r = rrank | mask
            if child_r < size:
                msg = yield self.recv(tag=(tag, child_r))
                acc = op(acc, msg.data)
            mask <<= 1
        return acc

    def _allreduce_impl(
        self, value: Any, op: Callable[[Any, Any], Any], size_bytes: int = 64
    ) -> Generator:
        """Reduce to rank 0, then broadcast the result."""
        reduced = yield from self._reduce_impl(value, op, root=0, size_bytes=size_bytes)
        result = yield from self._bcast_impl(reduced, root=0, size_bytes=size_bytes)
        return result

    def _scan_impl(
        self, value: Any, op: Callable[[Any, Any], Any], size_bytes: int = 64
    ) -> Generator:
        """Inclusive prefix reduction: rank r gets op(v_0, ..., v_r).

        Linear pipeline: each rank receives the prefix from rank r−1,
        folds in its own value, and forwards to rank r+1.
        """
        tag = self._coll_tag("scan")
        acc = value
        if self.rank > 0:
            msg = yield self.recv(source=self.rank - 1, tag=tag)
            acc = op(msg.data, value)
        if self.rank + 1 < self.size:
            self.send(acc, dest=self.rank + 1, tag=tag, size_bytes=size_bytes)
        return acc

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        source: int,
        sendtag: Any = 0,
        recvtag: Any = 0,
        size_bytes: int = 64,
    ) -> Generator:
        """Combined send+receive (deadlock-free shift exchanges)."""
        self.send(sendobj, dest=dest, tag=sendtag, size_bytes=size_bytes)
        msg = yield self.recv(source=source, tag=recvtag)
        return msg.data

    def _alltoall_impl(self, values: Any, size_bytes: int = 64) -> Generator:
        """Personalized exchange: rank i sends ``values[j]`` to rank j."""
        tag = self._coll_tag("alltoall")
        if len(values) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} values")
        out: list[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        for r in range(self.size):
            if r != self.rank:
                self.send(values[r], dest=r, tag=tag, size_bytes=size_bytes)
        for _ in range(self.size - 1):
            msg = yield self.recv(tag=tag)
            out[msg.source] = msg.data
        return out
