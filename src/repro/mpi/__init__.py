"""MPI-style message passing over RUDP (paper Sec. 2.5)."""

from .api import MPI_SERVICE, Communicator, MpiWorld
from .datatypes import ANY_SOURCE, ANY_TAG, Message, Status
from .errors import MpiError, RankError
from .requests import Request

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MPI_SERVICE",
    "Message",
    "MpiError",
    "MpiWorld",
    "RankError",
    "Request",
    "Status",
]
