"""MPI message vocabulary: wildcards, message records, status."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Status"]

#: Wildcard source rank for ``recv``.
ANY_SOURCE = -1
#: Wildcard tag for ``recv``.
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive (MPI_Status analogue)."""

    source: int
    tag: Any
    size_bytes: int = 0


@dataclass(frozen=True)
class Message:
    """A received message: payload plus its status."""

    data: Any
    status: Status
    #: Causal trace context the message was delivered under (None when
    #: untraced); receivers may parent follow-up spans to it.
    ctx: Any = None

    @property
    def source(self) -> int:
        """Sending rank."""
        return self.status.source

    @property
    def tag(self) -> Any:
        """Message tag."""
        return self.status.tag
