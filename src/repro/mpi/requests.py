"""Nonblocking-operation handles (MPI_Request analogue)."""

from __future__ import annotations

from typing import Any

from ..sim import Signal, Simulator, Waitable

__all__ = ["Request"]


class Request:
    """Handle for an ``isend``/``irecv``; complete it by yielding
    :meth:`wait` inside a simulation process, or poll :meth:`test`."""

    def __init__(self, sim: Simulator):
        self._signal = Signal(sim)

    def _complete(self, value: Any = None) -> None:
        if not self._signal.triggered:
            self._signal.succeed(value)

    def test(self) -> bool:
        """True once the operation has completed."""
        return self._signal.triggered

    @property
    def value(self) -> Any:
        """The result (a :class:`Message` for irecv, None for isend)."""
        return self._signal.value

    def wait(self) -> Waitable:
        """A waitable firing with the operation's result."""
        return self._signal
