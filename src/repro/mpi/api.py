"""MPI-style message passing over RUDP (paper Sec. 2.5).

The paper ported MPICH onto the RAIN communication layer by writing a
new MPICH device over RUDP; this module is the same idea natively: a
:class:`Communicator` per rank, point-to-point ``send``/``recv``/
``isend``/``irecv`` with source/tag matching, and the usual collectives
(:mod:`repro.mpi.collectives`).

Fault semantics match the paper exactly: MPI has no way to surface link
errors, so as long as the bundled interfaces retain one live path the
application proceeds as if nothing happened; when all paths die, sends
stall inside RUDP retransmission and the application *hangs* until the
network is repaired — then resumes.

Usage inside simulation processes::

    world = MpiWorld.build(sim, hosts, paths=[(0, 0), (1, 1)])

    def program(comm):
        if comm.rank == 0:
            comm.send({"a": 7}, dest=1, tag=11)
        elif comm.rank == 1:
            msg = yield comm.recv(source=0, tag=11)
            ...
        total = yield from comm.allreduce(comm.rank, op=sum_op)

    world.launch(program)
    sim.run()
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

from ..net import Host
from ..rudp import RudpConfig, RudpTransport
from ..sim import Process, Signal, Simulator, Waitable
from .collectives import CollectivesMixin
from .datatypes import ANY_SOURCE, ANY_TAG, Message, Status
from .errors import MpiError, RankError
from .requests import Request

__all__ = ["Communicator", "MpiWorld", "MPI_SERVICE"]

#: RUDP service name carrying MPI traffic.
MPI_SERVICE = "mpi"


def _matches(spec: Any, value: Any, wildcard: Any) -> bool:
    return spec == wildcard or spec == value


class Communicator(CollectivesMixin):
    """One rank's handle on the MPI world."""

    def __init__(self, world: "MpiWorld", rank: int, host: Host, transport: RudpTransport):
        self.world = world
        self.rank = rank
        self.host = host
        self.transport = transport
        self.sim: Simulator = world.sim
        # matching engine
        self._unexpected: list[Message] = []
        self._posted: list[tuple[int, Any, Signal]] = []
        self._coll_seq = 0
        self._coll_ctx = None  # span context of the running collective
        metrics = self.sim.obs.metrics
        self._m_msgs = metrics.counter(
            "mpi.p2p.messages", help="point-to-point sends"
        ).labels(rank=rank)
        self._m_bytes = metrics.counter(
            "mpi.p2p.bytes", help="point-to-point payload bytes"
        ).labels(rank=rank)
        self._m_coll_calls = metrics.counter(
            "mpi.collective.calls", help="collective invocations by operation"
        )
        self._m_coll_time = metrics.histogram(
            "mpi.collective.duration", help="simulated seconds per collective"
        )
        # op name -> (calls series, duration series); bound once per op.
        self._coll_series: dict[str, tuple] = {}
        transport.register(MPI_SERVICE, self._on_message)

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return len(self.world.comms)

    def _rank_host(self, rank: int) -> str:
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} out of range 0..{self.size - 1}")
        return self.world.comms[rank].host.name

    # -- point to point ----------------------------------------------------

    def send(
        self, obj: Any, dest: int, tag: Any = 0, size_bytes: int = 64, ctx: Any = None
    ) -> None:
        """Eager buffered send: returns immediately; RUDP guarantees
        in-order reliable delivery (or stalls through outages)."""
        self._m_msgs.inc()
        self._m_bytes.inc(size_bytes)
        tracer = self.sim.obs.tracer
        if tracer is not None:
            parent = ctx
            if parent is None:
                parent = tracer.current
            if parent is None:
                # Inside a collective, parent loose sends to its span.
                parent = self._coll_ctx
            span = tracer.instant(
                "mpi.send",
                parent=parent,
                node=self.host.name,
                rank=self.rank,
                dest=dest,
            )
            ctx = span.ctx
        self.transport.send(
            self._rank_host(dest),
            MPI_SERVICE,
            (self.rank, tag, obj, size_bytes),
            size_bytes=size_bytes,
            ctx=ctx,
        )

    def isend(self, obj: Any, dest: int, tag: Any = 0, size_bytes: int = 64) -> Request:
        """Nonblocking send; the request is complete on return (eager)."""
        self.send(obj, dest, tag, size_bytes)
        req = Request(self.sim)
        req._complete(None)
        return req

    def recv(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG) -> Waitable:
        """A waitable firing with the next matching :class:`Message`.

        Yield it inside a simulation process::

            msg = yield comm.recv(source=0, tag=7)
        """
        sig = Signal(self.sim)
        msg = self._match_unexpected(source, tag)
        if msg is not None:
            sig.succeed(msg)
        else:
            self._posted.append((source, tag, sig))
        return sig

    def irecv(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG) -> Request:
        """Nonblocking receive returning a :class:`Request`."""
        req = Request(self.sim)
        self.recv(source, tag).add_callback(lambda w: req._complete(w.value))
        return req

    def probe(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG) -> Optional[Status]:
        """Status of a matching queued message, if any (nonblocking)."""
        for msg in self._unexpected:
            if _matches(source, msg.source, ANY_SOURCE) and _matches(
                tag, msg.tag, ANY_TAG
            ):
                return msg.status
        return None

    # -- matching engine ----------------------------------------------------

    def _match_unexpected(self, source: int, tag: Any) -> Optional[Message]:
        for i, msg in enumerate(self._unexpected):
            if _matches(source, msg.source, ANY_SOURCE) and _matches(
                tag, msg.tag, ANY_TAG
            ):
                return self._unexpected.pop(i)
        return None

    def _on_message(self, src_node: str, payload: Any) -> None:
        src_rank, tag, obj, size = payload
        tracer = self.sim.obs.tracer
        msg = Message(
            data=obj,
            status=Status(source=src_rank, tag=tag, size_bytes=size),
            ctx=tracer.current if tracer is not None else None,
        )
        for i, (psrc, ptag, sig) in enumerate(self._posted):
            if _matches(psrc, msg.source, ANY_SOURCE) and _matches(
                ptag, msg.tag, ANY_TAG
            ):
                self._posted.pop(i)
                sig.succeed(msg)
                return
        self._unexpected.append(msg)


class MpiWorld:
    """The set of communicating ranks (MPI_COMM_WORLD analogue)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.comms: list[Communicator] = []

    @classmethod
    def build(
        cls,
        sim: Simulator,
        hosts: Sequence[Host],
        paths: Sequence[tuple[int, int]] = ((0, 0),),
        rudp_config: Optional[RudpConfig] = None,
    ) -> "MpiWorld":
        """Create transports and communicators for ``hosts``.

        ``paths`` lists the NIC pairs to bundle between every host pair
        (e.g. ``[(0, 0), (1, 1)]`` for the testbed's dual interfaces).
        """
        world = cls(sim)
        transports = [RudpTransport(h, rudp_config) for h in hosts]
        for rank, (host, tp) in enumerate(zip(hosts, transports)):
            world.comms.append(Communicator(world, rank, host, tp))
        for i, tp in enumerate(transports):
            for j, peer in enumerate(hosts):
                if i != j:
                    tp.connect(peer.name, paths=paths)
        return world

    def comm(self, rank: int) -> Communicator:
        """The communicator for ``rank``."""
        return self.comms[rank]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.comms)

    def launch(
        self, program: Callable[..., Generator], *args: Any, ranks: Optional[Sequence[int]] = None
    ) -> list[Process]:
        """Start ``program(comm, *args)`` as a process on each rank.

        Returns the processes; their values are the programs' returns.
        """
        procs = []
        for rank in ranks if ranks is not None else range(self.size):
            comm = self.comms[rank]
            gen = program(comm, *args)
            if not hasattr(gen, "send"):
                raise MpiError("MPI programs must be generator functions")
            proc = self.sim.process(gen, name=f"mpi:rank{rank}")
            proc._defused = True
            procs.append(proc)
        return procs
