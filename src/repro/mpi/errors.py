"""MPI layer errors."""

__all__ = ["MpiError", "RankError"]


class MpiError(Exception):
    """Base class for MPI layer misuse."""


class RankError(MpiError):
    """A rank argument is out of range for the communicator."""
