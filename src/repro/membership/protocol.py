"""Token-ring group membership with the 911 mechanism (paper Sec. 3).

Each cluster node runs a :class:`MembershipNode` over RUDP.  A single
token circulates the logical ring carrying the authoritative membership
(Sec. 3.2); the holder detects unresponsive successors (aggressive or
conservative policy, Fig. 9) and updates the ring; sequence numbers make
stale tokens harmless and arbitrate regeneration.  The 911 mechanism
(Sec. 3.3) unifies three recoveries under one message:

- *token regeneration* — a starving node asks every member for the right
  to regenerate; any node with a more recent token copy denies, so only
  the node holding the latest copy wins;
- *dynamic join* — a 911 from a non-member is a join request: the
  receiver adds the newcomer next time it holds the token and passes the
  token straight to it;
- *transient-failure / wrong-exclusion recovery* — an excluded node
  starves, sends a 911, and is re-added exactly like a joiner, so local
  detector mistakes self-heal (Sec. 3.3.3).

Beyond the paper's prose, two engineering details make partition *heal*
converge (the paper's asynchronous-system caveat): a node whose ring has
collapsed to itself keeps serving as a singleton cluster but enters
"solo mode", soliciting known peers with join-911s and adopting any
incoming token that contains it; and a member that unknowingly passed a
stale token is told so with a NACK, killing duplicate token chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..net import Host
from ..rudp import RudpTransport
from ..sim import Interrupt, Simulator
from .config import MembershipConfig
from .detection import make_policy
from .token import Token

__all__ = ["MembershipNode", "MembershipEvent", "MEMBERSHIP_SERVICE"]

#: RUDP service name carrying membership traffic.
MEMBERSHIP_SERVICE = "membership"


@dataclass(frozen=True)
class MembershipEvent:
    """One observable membership change at one node."""

    time: float
    node: str  # where the event was observed
    kind: str  # token|excluded|join_added|view|regen|solo|abandon
    subject: Any = None  # affected node, ring snapshot, seq, ...


class MembershipNode:
    """One node's membership protocol instance."""

    def __init__(
        self,
        host: Host,
        transport: RudpTransport,
        config: Optional[MembershipConfig] = None,
    ):
        config = config if config is not None else MembershipConfig()
        self.host = host
        self.sim: Simulator = host.sim
        self.name = host.name
        self.transport = transport
        self.config = config
        self.policy = make_policy(config.detection, config.conservative_threshold)
        transport.register(MEMBERSHIP_SERVICE, self._on_msg)

        self.view: list[str] = [self.name]
        self.known_peers: set[str] = set()
        self.local_seq = 0
        self.local_copy: Optional[Token] = None
        self.last_token_time = self.sim.now
        self.holding: Optional[Token] = None
        self.solo_mode = False
        self.regen_count = 0
        self.pending_joins: set[str] = set()
        self._pending_ack: Optional[tuple[int, Any]] = None
        self._hold_hooks: list[Callable[[Token], None]] = []
        self._listeners: list[Callable[[MembershipEvent], None]] = []
        self.events: list[MembershipEvent] = []
        self.tokens_seen = 0
        self._watchdog = None
        metrics = self.sim.obs.metrics
        self._m_token_rtt = metrics.histogram(
            "membership.token.rtt",
            help="simulated seconds between successive token holds",
        ).labels(node=self.name)
        self._m_regens = metrics.counter(
            "membership.protocol.regenerations", help="911 token regenerations"
        ).labels(node=self.name)
        self._m_exclusions = metrics.counter(
            "membership.protocol.exclusions", help="members excluded by this detector"
        ).labels(node=self.name)
        self._m_911s = metrics.counter(
            "membership.protocol.msgs_911", help="911 requests sent"
        ).labels(node=self.name)

    # -- public API --------------------------------------------------------

    def bootstrap(self, members: list[str], first_holder: bool = False) -> None:
        """Install the initial membership; one node must be the
        ``first_holder`` and generates the first token."""
        if self.name not in members:
            raise ValueError(f"{self.name} missing from initial membership")
        self.view = list(members)
        self.known_peers.update(m for m in members if m != self.name)
        self._start_watchdog()
        if first_holder:
            token = Token(seq=1, ring=list(members))
            self.sim.call_in(0.0, self._adopt, token, self.name)

    def join(self, contact: str) -> None:
        """Start as a non-member that knows one cluster contact; the 911
        mechanism performs the join (Sec. 3.3.2)."""
        self.known_peers.add(contact)
        self.solo_mode = True
        self._start_watchdog()
        self._send_911s()

    @property
    def membership(self) -> tuple[str, ...]:
        """This node's current membership view, in ring order."""
        return tuple(self.view)

    @property
    def is_member(self) -> bool:
        """Whether this node believes it is part of the membership."""
        return self.name in self.view and not self.solo_mode

    def on_hold(self, fn: Callable[[Token], None]) -> None:
        """Run ``fn(token)`` every time this node holds the token — the
        paper's attachment hook (SNOW's HTTP queue rides here).  The
        token is held by exactly one node at a time, so hooks execute
        under cluster-wide mutual exclusion."""
        self._hold_hooks.append(fn)

    def subscribe(self, fn: Callable[[MembershipEvent], None]) -> None:
        """Observe membership events as they happen."""
        self._listeners.append(fn)

    # -- event plumbing ----------------------------------------------------

    def _emit(self, kind: str, subject: Any = None) -> None:
        ev = MembershipEvent(self.sim.now, self.name, kind, subject)
        self.events.append(ev)
        # Every membership event also rides the observability bus, so
        # cross-layer tests (failover timelines, Fig. 9 token paths) can
        # subscribe without wiring per-node listeners.
        self.sim.obs.bus.publish(
            f"membership.node.{kind}", node=self.name, subject=subject
        )
        tracer = self.sim.obs.tracer
        if tracer is not None:
            # Transition spans inherit the ambient context: during message
            # dispatch that is the causing RUDP/packet span, so Fig. 9
            # stories ("why did this node change view?") fall out of the
            # ancestor chain.
            tracer.instant(
                f"membership.{kind}",
                node=self.name,
                subject=(
                    subject
                    if isinstance(subject, (str, int, float, type(None)))
                    else str(subject)
                ),
            )
        if kind == "regen":
            self._m_regens.inc()
        elif kind == "excluded":
            self._m_exclusions.inc()
        for fn in self._listeners:
            fn(ev)

    # -- messaging ----------------------------------------------------------

    def _send(self, target: str, msg: tuple, size: int = 64) -> None:
        self.transport.send(target, MEMBERSHIP_SERVICE, msg, size_bytes=size)

    def _on_msg(self, src: str, msg: tuple) -> None:
        if not self.host.up:
            return
        kind = msg[0]
        if kind == "TOKEN":
            self._on_token(src, msg[1])
        elif kind == "ACK":
            self._on_ack(msg[1])
        elif kind == "NACK":
            self._on_nack(msg[1], msg[2])
        elif kind == "M911":
            self._on_911(src, msg[1], msg[2])
        elif kind == "M911R":
            self._on_911_reply(src, msg[1], msg[2])

    # -- token mechanism ---------------------------------------------------

    def _on_token(self, src: str, token: Token) -> None:
        accept = token.seq > self.local_seq
        if not accept and self.solo_mode and self.name in token.ring and len(token.ring) >= 2:
            accept = True  # partition heal: adopt the bigger cluster's token
        if self.name not in token.ring:
            accept = False  # never adopt a ring that excludes us
        if not accept:
            self._send(src, ("NACK", token.seq, self.local_seq))
            return
        self._send(src, ("ACK", token.seq))
        self._adopt(token.copy(), src)

    def _adopt(self, token: Token, src: str) -> None:
        """Become the token holder."""
        tracer = self.sim.obs.tracer
        if tracer is None:
            self._adopt_body(token, src, None)
            return
        # Adoptions caused by an inbound TOKEN run under that message's
        # activation, chaining holder to holder; a genesis/regeneration
        # adoption (src == self.name, no ambient context) roots a trace.
        span = tracer.start(
            "membership.adopt",
            node=self.name,
            seq=token.seq,
            src=src,
            lineage=str(token.lineage),
        )
        with tracer.activate(span.ctx):
            self._adopt_body(token, src, span.ctx)
        tracer.end(span)

    def _adopt_body(self, token: Token, src: str, ctx: Any) -> None:
        was_view = self.view
        self.tokens_seen += 1
        if self.tokens_seen > 1:
            # token round-trip time as this node observes it (Fig. 9)
            self._m_token_rtt.observe(self.sim.now - self.last_token_time)
        self.solo_mode = False
        self.local_seq = token.seq
        self.regen_count = token.regen_count
        self.last_token_time = self.sim.now
        self.view = list(token.ring)
        self.known_peers.update(n for n in token.ring if n != self.name)
        self.local_copy = token.copy()
        if tuple(was_view) != tuple(self.view):
            self._emit("view", tuple(self.view))
        self._emit("token", token.seq)
        self._emit("accept", (token.lineage, token.seq))
        # Dynamic joins: add pending newcomers right after ourselves.
        for newcomer in sorted(self.pending_joins):
            if newcomer not in token.ring:
                token.insert_after(self.name, newcomer)
                self._emit("join_added", newcomer)
        self.pending_joins.clear()
        if list(token.ring) != self.view:
            self.view = list(token.ring)
            self.local_copy = token.copy()
            self._emit("view", tuple(self.view))
        # Mutual-exclusion zone: attachments are processed while holding.
        for hook in self._hold_hooks:
            hook(token)
        self.holding = token
        # The pass process carries the adopt span's context so the TOKEN
        # send (and any exclusions it decides) stay in this trace.
        self.sim.process(self._pass_proc(token), name=f"pass:{self.name}", ctx=ctx)

    def _pass_proc(self, token: Token):
        cfg = self.config
        yield self.sim.timeout(cfg.token_interval)
        while True:
            if self.holding is not token:
                return  # superseded (adopted a newer token, or NACKed)
            if not self.host.up:
                self.holding = None  # crashed while holding: token is lost
                return
            target = token.next_after(self.name)
            if target == self.name:
                # Alone in the ring: run as a singleton cluster but keep
                # soliciting peers (solo mode) so partitions heal.
                if self.known_peers and not self.solo_mode:
                    self.solo_mode = True
                    self._emit("solo", tuple(self.view))
                token.seq += 1
                self.local_seq = token.seq
                self.last_token_time = self.sim.now
                self.local_copy = token.copy()
                for newcomer in sorted(self.pending_joins):
                    token.insert_after(self.name, newcomer)
                    self._emit("join_added", newcomer)
                self.pending_joins.clear()
                if len(token.ring) > 1:
                    continue  # someone joined: hand the token over
                # a singleton cluster still holds the token: attachments
                # (VIP tables, queues) must keep being processed
                for hook in self._hold_hooks:
                    hook(token)
                self._solo_ticks = getattr(self, "_solo_ticks", 0) + 1
                solicit_every = max(1, int(cfg.starvation_timeout / cfg.token_interval))
                if self.solo_mode and self._solo_ticks % solicit_every == 0:
                    self._send_911s()  # keep inviting known peers back
                yield self.sim.timeout(cfg.token_interval)
                continue
            token.seq += 1
            self.local_seq = token.seq
            self.local_copy = token.copy()
            ack = self.sim.event()
            self._pending_ack = (token.seq, ack)
            self._send(target, ("TOKEN", token.copy()), size=cfg.token_bytes)
            winner = yield self.sim.any_of([ack, self.sim.timeout(cfg.ack_timeout)])
            if self.holding is not token:
                return
            if winner is ack:
                if ack.value == "ack":
                    self.policy.on_send_success(token, target)
                    self.holding = None
                    return
                # NACKed: our token is stale; abandon it.
                self.holding = None
                self._emit("abandon", token.seq)
                return
            # Timed out: the successor is unreachable — failure detection.
            excluded = self.policy.on_send_failure(token, self.name, target)
            if excluded is not None:
                self._emit("excluded", excluded)
            self.view = list(token.ring)
            self.local_copy = token.copy()

    def _on_ack(self, seq: int) -> None:
        if self._pending_ack and self._pending_ack[0] == seq:
            _, sig = self._pending_ack
            self._pending_ack = None
            if not sig.triggered:
                sig.succeed("ack")

    def _on_nack(self, seq: int, their_seq: int) -> None:
        # A NACK is only meaningful for the exact send it negates.  Old
        # NACKs can arrive long after the fact (RUDP queues across
        # partitions); matching loosely here once let a NACK for an
        # ancient token kill a freshly merged one.
        if self._pending_ack and self._pending_ack[0] == seq:
            _, sig = self._pending_ack
            self._pending_ack = None
            if not sig.triggered:
                sig.succeed("nack")
        elif self.holding is not None and self.holding.seq == seq:
            self.holding = None
            self._emit("abandon", seq)

    # -- 911 mechanism (Sec. 3.3) -----------------------------------------------

    def _start_watchdog(self) -> None:
        if self._watchdog is None:
            self._watchdog = self.sim.process(
                self._watchdog_proc(), name=f"watchdog:{self.name}"
            )

    def _watchdog_proc(self):
        cfg = self.config
        try:
            while True:
                yield self.sim.timeout(cfg.starvation_timeout / 4)
                if not self.host.up or self.holding is not None:
                    continue
                if self.sim.now - self.last_token_time <= cfg.starvation_timeout:
                    continue
                # STARVING (Sec. 3.3.1): request regeneration / rejoin.
                self._911_replies: list[tuple[str, str, int]] = []
                self._send_911s()
                yield self.sim.timeout(cfg.reply_window)
                if not self.host.up:
                    continue
                if self.sim.now - self.last_token_time <= cfg.starvation_timeout:
                    continue  # a token arrived while we waited
                replies = self._911_replies
                if any(r[1] == "deny" for r in replies):
                    # someone has a fresher copy; they will regenerate
                    self.last_token_time = self.sim.now
                    continue
                if any(r[1] == "join_pending" for r in replies):
                    # we are not a member there; they will re-add us
                    self.last_token_time = self.sim.now
                    continue
                # All reachable members approved (or nobody answered):
                # we hold the most recent copy — regenerate (Sec. 3.3.1).
                self._regenerate()
        except Interrupt:
            return

    def _send_911s(self) -> None:
        targets = set(n for n in self.view if n != self.name) | self.known_peers
        tracer = self.sim.obs.tracer
        span = None
        if tracer is not None:
            span = tracer.start(
                "membership.911",
                node=self.name,
                seq=self.local_seq,
                targets=len(targets),
            )
            tracer._stack.append(span.ctx)
        try:
            for target in sorted(targets):
                self._m_911s.inc()
                self._send(target, ("M911", self.name, self.local_seq))
        finally:
            if span is not None:
                tracer._stack.pop()
                tracer.end(span)

    def _on_911(self, src: str, requester: str, req_seq: int) -> None:
        self.known_peers.add(requester)
        if requester not in self.view:
            # Join request (Sec. 3.3.2) — also covers rejoin after a
            # wrong exclusion or transient failure (Sec. 3.3.3).
            if self.view == [self.name] and self.holding is None and not self.local_copy:
                # Neither side has a token (fresh bootstrap by joins):
                # deterministic tie-break — smaller name creates the ring.
                if self.name < requester:
                    self.pending_joins.add(requester)
                    self._regenerate()
                return
            self.pending_joins.add(requester)
            self._send(requester, ("M911R", "join_pending", self.local_seq))
            return
        # Regeneration request: deny iff our copy is more recent
        # (sequence number, then name, so arbitration is total).
        if (self.local_seq, self.name) > (req_seq, requester) or self.holding is not None:
            self._send(requester, ("M911R", "deny", self.local_seq))
        else:
            self._send(requester, ("M911R", "approve", self.local_seq))

    def _on_911_reply(self, src: str, verdict: str, their_seq: int) -> None:
        if hasattr(self, "_911_replies"):
            self._911_replies.append((src, verdict, their_seq))

    def _regenerate(self) -> None:
        """Create a fresh token from our latest state (Sec. 3.3.1)."""
        if not self.host.up:
            return
        ring = list(self.view)
        if self.name not in ring:
            ring.append(self.name)
        for newcomer in sorted(self.pending_joins):
            if newcomer not in ring:
                ring.append(newcomer)
        self.pending_joins.clear()
        token = Token(
            seq=self.local_seq + 1,
            ring=ring,
            regen_count=self.regen_count + 1,
            attachments=dict(self.local_copy.attachments) if self.local_copy else {},
            lineage=(self.regen_count + 1, self.name),
        )
        self._emit("regen", token.seq)
        self._adopt(token, self.name)

    # -- teardown ----------------------------------------------------------

    def stop(self) -> None:
        """Stop background activity (watchdog); for test teardown."""
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.interrupt("stopped")
            self._watchdog = None
