"""The membership token (paper Sec. 3.2).

A single token circulates the logical ring carrying the *authoritative*
membership: the ring order itself, a sequence number incremented on
every hop (used both to discard stale tokens and to arbitrate 911
regeneration), per-node failure counts for the conservative detection
protocol, and an application attachment area (SNOW rides its HTTP queue
here; Rainwall its virtual-IP table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Token"]


@dataclass
class Token:
    """The circulating membership token."""

    seq: int
    ring: list[str]
    fail_counts: dict[str, int] = field(default_factory=dict)
    attachments: dict[str, Any] = field(default_factory=dict)
    regen_count: int = 0  # how many times the token has been regenerated
    #: lineage identity: (regen_count, regenerator name).  Every 911
    #: regeneration starts a new lineage; concurrent regenerations (the
    #: FLP-inevitable case where a deny arrives too late) get *distinct*
    #: lineages, which is what lets the invariant checker tell a benign
    #: transient dual-token from a genuine duplicate.
    lineage: tuple = (0, "genesis")

    def copy(self) -> "Token":
        """Deep-enough copy for a node's local snapshot."""
        return Token(
            seq=self.seq,
            ring=list(self.ring),
            fail_counts=dict(self.fail_counts),
            attachments=dict(self.attachments),
            regen_count=self.regen_count,
            lineage=self.lineage,
        )

    def next_after(self, node: str) -> str:
        """The ring successor of ``node`` (itself if alone or absent)."""
        if node not in self.ring or len(self.ring) == 1:
            return node
        i = self.ring.index(node)
        return self.ring[(i + 1) % len(self.ring)]

    def remove(self, node: str) -> None:
        """Drop ``node`` from the ring (aggressive exclusion)."""
        if node in self.ring:
            self.ring.remove(node)
        self.fail_counts.pop(node, None)

    def insert_after(self, anchor: str, node: str) -> None:
        """Place ``node`` directly after ``anchor`` in the ring."""
        if node in self.ring:
            return
        if anchor not in self.ring:
            self.ring.append(node)
            return
        self.ring.insert(self.ring.index(anchor) + 1, node)

    def demote(self, node: str) -> None:
        """Conservative reorder: move ``node`` one position later in the
        ring (ABCD with B unresponsive becomes ACBD)."""
        if node not in self.ring or len(self.ring) < 3:
            return
        i = self.ring.index(node)
        j = (i + 1) % len(self.ring)
        self.ring[i], self.ring[j] = self.ring[j], self.ring[i]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token(seq={self.seq}, ring={''.join(n[-1] for n in self.ring)})"
