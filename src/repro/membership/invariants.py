"""Machine-checkable invariants of the membership protocol (Sec. 3).

The paper states three global guarantees for the token mechanism:
uniqueness of the token, unambiguous propagation of failures "within one
round of token travel", and eventual re-inclusion of every non-faulty
node in the primary component.  This module turns node event traces into
verdicts, so tests and soak benchmarks can assert the guarantees instead
of eyeballing traces.

Asynchrony makes two transients unavoidable (and the checker's design
acknowledges them precisely):

- a token segment queued toward a down node can *resurrect* when the
  node recovers; the node accepts it once and the NACK mechanism kills
  the stale lineage on its next hop;
- two starving nodes can regenerate *concurrently* when a deny message
  is delayed past the reply window (the FLP impossibility in the small);
  each regeneration starts a distinct token **lineage**, and NACKs kill
  all but one lineage when they meet.

The checker therefore verifies what the protocol actually promises:
within one lineage there is at most one acceptor per sequence number and
acceptances are time-ordered; each node's accepted sequence numbers
strictly increase; and after the run quiesces, all live nodes agree —
i.e. exactly one lineage survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .protocol import MembershipNode

__all__ = ["InvariantReport", "check_invariants"]


@dataclass
class InvariantReport:
    """Outcome of checking a run's membership traces."""

    token_unique: bool = True
    seq_monotone_per_node: bool = True
    final_agreement: bool = True
    lineages_seen: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All invariants held."""
        return self.token_unique and self.seq_monotone_per_node and self.final_agreement

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return f"membership invariants: OK ({self.lineages_seen} lineage(s))"
        return "membership invariants VIOLATED:\n  " + "\n  ".join(self.violations)


def check_invariants(
    nodes: Sequence[MembershipNode],
    require_agreement: bool = True,
) -> InvariantReport:
    """Verify the Sec. 3 guarantees over the nodes' recorded events.

    - **Token uniqueness, per lineage**: within one token lineage, no
      sequence number is accepted by two different nodes, and
      acceptances are globally time-ordered.  Distinct lineages (one per
      911 regeneration) may coexist transiently; survival of more than
      one is caught by the agreement check.
    - **Per-node monotonicity**: each node's accepted sequence numbers
      strictly increase (stale tokens were rejected).
    - **Final agreement** (optional): all live nodes currently report
      the same membership set.
    """
    report = InvariantReport()
    # per-node monotonicity over raw sequence numbers
    for n in nodes:
        seqs = [e.subject for e in n.events if e.kind == "token"]
        if seqs != sorted(seqs) or len(seqs) != len(set(seqs)):
            report.seq_monotone_per_node = False
            report.violations.append(
                f"{n.name}: accepted token sequence not strictly increasing"
            )
    # lineage-keyed acceptances: (time, lineage, seq, node)
    accepts: list[tuple[float, tuple, int, str]] = []
    for n in nodes:
        for e in n.events:
            if e.kind == "accept":
                lineage, seq = e.subject
                accepts.append((e.time, lineage, seq, n.name))
    accepts.sort()
    lineages = {lineage for _, lineage, _, _ in accepts}
    report.lineages_seen = len(lineages)
    by_name = {n.name: n for n in nodes}

    def contained(node: str, t: float, high: int) -> bool:
        """The resurrection tolerance: a node that accepted a stale copy
        (a segment delivered late, after its downtime) must abandon that
        lineage or move on to a higher sequence afterwards."""
        return any(
            e.time >= t
            and (e.kind == "abandon" or (e.kind == "token" and e.subject > high))
            for e in by_name[node].events
        )

    for lineage in sorted(lineages):
        chain = [(t, seq, node) for t, lin, seq, node in accepts if lin == lineage]
        seen: dict[int, str] = {}
        high = 0
        for t, seq, node in chain:
            dup_holder = seen.get(seq)
            anomaly = None
            if dup_holder is not None and dup_holder != node:
                anomaly = f"seq {seq} accepted by both {dup_holder} and {node}"
            elif seq < high:
                anomaly = f"{node} accepted stale seq {seq} at t={t:.2f}"
            seen[seq] = node
            high = max(high, seq)
            if anomaly and not contained(node, t, high):
                report.token_unique = False
                report.violations.append(
                    f"lineage {lineage}: {anomaly} and the copy was never abandoned"
                )
    if require_agreement:
        live_views = {
            tuple(sorted(n.membership)) for n in nodes if n.host.up
        }
        if len(live_views) > 1:
            report.final_agreement = False
            report.violations.append(f"live nodes disagree: {sorted(live_views)}")
    return report
