"""Token-ring group membership and the 911 mechanism (paper Sec. 3)."""

from .config import MembershipConfig
from .invariants import InvariantReport, check_invariants
from .detection import (
    AggressiveDetection,
    ConservativeDetection,
    DetectionPolicy,
    make_policy,
)
from .protocol import MEMBERSHIP_SERVICE, MembershipEvent, MembershipNode
from .service import build_membership, membership_converged
from .token import Token

__all__ = [
    "AggressiveDetection",
    "ConservativeDetection",
    "DetectionPolicy",
    "InvariantReport",
    "check_invariants",
    "MEMBERSHIP_SERVICE",
    "MembershipConfig",
    "MembershipEvent",
    "MembershipNode",
    "Token",
    "build_membership",
    "make_policy",
    "membership_converged",
]
