"""Tuning knobs for the membership protocol.

Defaults follow the regimes implied by the paper: a token hop every
100 ms and a ~2 s starvation timeout give the "about two seconds"
fail-over the paper reports for Rainwall (Sec. 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MembershipConfig"]


@dataclass(frozen=True)
class MembershipConfig:
    """Membership protocol parameters."""

    token_interval: float = 0.1  # hold time before passing the token on
    ack_timeout: float = 0.5  # silence after a send => failure suspected
    starvation_timeout: float = 2.0  # tokenless time before a 911
    reply_window: float = 0.5  # how long a 911 collects replies
    detection: str = "aggressive"  # or "conservative"
    conservative_threshold: int = 2  # consecutive failed sends => removal
    token_bytes: int = 256  # wire size charged per token hop

    def __post_init__(self):
        if self.detection not in ("aggressive", "conservative"):
            raise ValueError(f"unknown detection mode {self.detection!r}")
        if self.conservative_threshold < 1:
            raise ValueError("conservative_threshold must be >= 1")
