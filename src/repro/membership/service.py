"""Cluster-level convenience for standing up membership on many hosts."""

from __future__ import annotations

from typing import Optional, Sequence

from ..net import Host
from ..rudp import RudpConfig, RudpTransport
from .config import MembershipConfig
from .protocol import MembershipNode

__all__ = ["build_membership", "membership_converged"]


def build_membership(
    hosts: Sequence[Host],
    config: Optional[MembershipConfig] = None,
    rudp_config: Optional[RudpConfig] = None,
    paths: Sequence[tuple[int, int]] = ((0, 0),),
    transports: Optional[Sequence[RudpTransport]] = None,
    first_holder: int = 0,
) -> list[MembershipNode]:
    """Create and bootstrap a membership node on every host.

    Existing ``transports`` may be passed when other services (MPI,
    storage) share them; otherwise fresh RUDP transports are created and
    fully connected over ``paths``.
    """
    config = config if config is not None else MembershipConfig()
    rudp_config = rudp_config if rudp_config is not None else RudpConfig()
    if transports is None:
        transports = [RudpTransport(h, rudp_config) for h in hosts]
        for tp in transports:
            for peer in hosts:
                if peer.name != tp.host.name:
                    tp.connect(peer.name, paths=paths)
    names = [h.name for h in hosts]
    nodes = [
        MembershipNode(h, tp, config) for h, tp in zip(hosts, transports)
    ]
    for i, node in enumerate(nodes):
        node.bootstrap(names, first_holder=(i == first_holder))
    return nodes


def membership_converged(nodes: Sequence[MembershipNode], expected: Sequence[str]) -> bool:
    """True when every live listed node's view equals ``expected`` (as a set)."""
    want = set(expected)
    return all(
        set(n.membership) == want for n in nodes if n.host.up and n.name in want
    )
