"""Failure-detection policies for the token mechanism (Sec. 3.2.1-3.2.2).

When the token holder fails to hand the token to the ring successor, one
of two policies decides what happens:

- **Aggressive** (Sec. 3.2.1): remove the unresponsive node from the
  membership immediately and try the next live node.  Fast detection;
  may temporarily exclude a partially-disconnected node, which rejoins
  automatically via the 911 mechanism (Fig. 9b).
- **Conservative** (Sec. 3.2.2): do not remove on first failure —
  *reorder* the ring so another node tries the suspect next (ABCD →
  ACBD, Fig. 9c), and only remove after ``threshold`` consecutive failed
  deliveries recorded on the token's ``fail_counts``.  Slower detection;
  never excludes a node that any member can still reach.
"""

from __future__ import annotations

from typing import Optional, Protocol

from .token import Token

__all__ = ["DetectionPolicy", "AggressiveDetection", "ConservativeDetection", "make_policy"]


class DetectionPolicy(Protocol):
    """Reaction of the token holder to an undeliverable successor."""

    def on_send_failure(self, token: Token, holder: str, target: str) -> Optional[str]:
        """Mutate ``token`` after ``holder`` failed to reach ``target``.

        Returns the excluded node's name if the policy removed one, else
        None.  The holder then re-selects its successor from the updated
        ring.
        """
        ...

    def on_send_success(self, token: Token, target: str) -> None:
        """Record a successful delivery to ``target``."""
        ...


class AggressiveDetection:
    """Remove the unresponsive node at the first failed handoff."""

    def on_send_failure(self, token: Token, holder: str, target: str) -> Optional[str]:
        token.remove(target)
        return target

    def on_send_success(self, token: Token, target: str) -> None:
        token.fail_counts.pop(target, None)


class ConservativeDetection:
    """Reorder first; remove only after ``threshold`` consecutive failures."""

    def __init__(self, threshold: int = 2):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold

    def on_send_failure(self, token: Token, holder: str, target: str) -> Optional[str]:
        count = token.fail_counts.get(target, 0) + 1
        token.fail_counts[target] = count
        if count >= self.threshold:
            token.remove(target)
            return target
        token.demote(target)
        return None

    def on_send_success(self, token: Token, target: str) -> None:
        token.fail_counts.pop(target, None)


def make_policy(name: str, threshold: int = 2) -> DetectionPolicy:
    """Policy factory from a config string."""
    if name == "aggressive":
        return AggressiveDetection()
    if name == "conservative":
        return ConservativeDetection(threshold)
    raise ValueError(f"unknown detection policy {name!r}")
