"""Counting networks with fault-tolerant balancers (paper ref. [44]).

The RAIN interconnect work includes Riedel & Bruck, *"Tolerating Faults
in Counting Networks"* (cited in Sec. 1.3 alongside the topology
results).  A counting network distributes tokens arriving on arbitrary
input wires across its output wires with the *step property*: in any
quiescent state the output counts ``c_0 ≥ c_1 ≥ ... ≥ c_{w-1}`` differ
pairwise by at most one — a scalable building block for distributed
counters and load balancers.

This module implements:

- :class:`Balancer` — the 2×2 toggle, with the stuck-fault model
  (a faulty balancer forwards every token to one fixed output);
- :func:`bitonic_network` — the Aspnes–Herlihy–Shavit bitonic counting
  network of width w (a power of two), built from Batcher's bitonic
  wiring with comparators replaced by balancers;
- :class:`CountingNetwork` — traversal, fault injection, and the
  correction construction of [44]: appending a (fault-free) counting
  stage restores the step property no matter how faults skewed the
  upstream distribution, because a counting network is also a smoothing
  network for arbitrary input distributions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import MetricsRegistry

__all__ = [
    "Balancer",
    "CountingNetwork",
    "bitonic_network",
    "has_step_property",
    "smoothness",
]


class Balancer:
    """A 2×2 toggle balancer.

    Healthy behaviour alternates tokens between ``top`` and ``bottom``
    (top first).  The fault model of [44] is *stuck*: a faulty balancer
    forwards every token to one fixed output, losing the alternation.
    """

    __slots__ = ("top", "bottom", "state", "stuck")

    def __init__(self, top: int, bottom: int):
        if top == bottom:
            raise ValueError("balancer wires must differ")
        self.top = top
        self.bottom = bottom
        self.state = 0
        self.stuck: Optional[int] = None  # None healthy; else fixed output wire

    @property
    def wires(self) -> tuple[int, int]:
        """The two wires this balancer touches."""
        return (self.top, self.bottom)

    def fail_stuck(self, to_top: bool = True) -> None:
        """Make the balancer forward everything to one output."""
        self.stuck = self.top if to_top else self.bottom

    def repair(self) -> None:
        """Clear the fault (toggle state resumes where it was)."""
        self.stuck = None

    def route(self, wire: int) -> int:
        """Pass one token through; returns the output wire."""
        if wire not in (self.top, self.bottom):
            raise ValueError(f"token on wire {wire} does not enter this balancer")
        if self.stuck is not None:
            return self.stuck
        out = self.top if self.state == 0 else self.bottom
        self.state ^= 1
        return out


def bitonic_network(width: int) -> list[list[Balancer]]:
    """Layers of the bitonic counting network B[width] (width = 2^p).

    Batcher's bitonic wiring; 'descending' comparator regions become
    balancers whose *top* output is the higher wire, which is exactly
    the orientation that makes the network count.
    """
    if width < 1 or width & (width - 1):
        raise ValueError("width must be a power of two")
    layers: list[list[Balancer]] = []
    k = 2
    while k <= width:
        j = k // 2
        while j >= 1:
            layer = []
            for i in range(width):
                partner = i ^ j
                if partner > i:
                    if (i & k) == 0:
                        layer.append(Balancer(i, partner))
                    else:
                        layer.append(Balancer(partner, i))
            layers.append(layer)
            j //= 2
        k *= 2
    return layers


def has_step_property(counts: Sequence[int]) -> bool:
    """Whether output counts satisfy the step property."""
    return all(counts[i] - counts[i + 1] in (0, 1) for i in range(len(counts) - 1))


def smoothness(counts: Sequence[int]) -> int:
    """Max minus min output count (0 or 1 for a counting network)."""
    return max(counts) - min(counts) if counts else 0


class CountingNetwork:
    """A runnable balancing network with fault injection and correction."""

    def __init__(
        self,
        width: int,
        layers: Optional[list[list[Balancer]]] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        self.width = width
        self.layers = layers if layers is not None else bitonic_network(width)
        self.output_counts = [0] * width
        self.tokens_routed = 0
        # Counting networks are pure (no simulator); experiments that
        # want them on a cluster report pass the report's registry in.
        self._m_tokens = (
            metrics.counter(
                "counting.network.tokens", help="tokens routed through the network"
            ).labels(width=width)
            if metrics is not None
            else None
        )
        # wire -> balancer lookup per layer, for O(depth) traversal
        self._index: list[dict[int, Balancer]] = []
        for layer in self.layers:
            lut: dict[int, Balancer] = {}
            for b in layer:
                lut[b.top] = b
                lut[b.bottom] = b
            self._index.append(lut)

    @property
    def depth(self) -> int:
        """Number of layers."""
        return len(self.layers)

    @property
    def size(self) -> int:
        """Total balancer count."""
        return sum(len(layer) for layer in self.layers)

    def balancers(self) -> Iterable[Balancer]:
        """All balancers, layer by layer."""
        for layer in self.layers:
            yield from layer

    def traverse(self, wire: int) -> int:
        """Route one token entering on ``wire``; returns the output wire."""
        if not (0 <= wire < self.width):
            raise ValueError(f"wire {wire} out of range")
        w = wire
        for lut in self._index:
            b = lut.get(w)
            if b is not None:
                w = b.route(w)
        self.output_counts[w] += 1
        self.tokens_routed += 1
        if self._m_tokens is not None:
            self._m_tokens.inc()
        return w

    def run(self, arrivals: Iterable[int]) -> list[int]:
        """Route a batch of tokens; returns the output counts so far."""
        for wire in arrivals:
            self.traverse(wire)
        return list(self.output_counts)

    def reset_counts(self) -> None:
        """Zero the output tally (balancer toggle states persist)."""
        self.output_counts = [0] * self.width
        self.tokens_routed = 0

    # -- fault handling (ref. [44]) -----------------------------------------

    def inject_stuck_faults(
        self, count: int, rng: np.random.Generator, to_top: Optional[bool] = None
    ) -> list[Balancer]:
        """Make ``count`` distinct random balancers stuck; returns them."""
        all_b = list(self.balancers())
        if count > len(all_b):
            raise ValueError("more faults than balancers")
        idx = rng.choice(len(all_b), size=count, replace=False)
        failed = []
        for i in idx:
            b = all_b[int(i)]
            b.fail_stuck(to_top if to_top is not None else bool(rng.integers(2)))
            failed.append(b)
        return failed

    def with_correction(self) -> "CountingNetwork":
        """The fault-tolerance construction of [44]: append a healthy
        counting stage.

        A counting network smooths *any* input distribution to the step
        property, so feeding the (possibly fault-skewed) outputs of this
        network into a fresh bitonic stage restores correct counting —
        at the cost of doubling the depth.  The returned network shares
        this network's layers and appends new healthy ones.
        """
        corrected = CountingNetwork(
            self.width, layers=[*self.layers, *bitonic_network(self.width)]
        )
        return corrected
