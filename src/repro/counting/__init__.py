"""Fault-tolerant counting networks (paper ref. [44])."""

from .network import (
    Balancer,
    CountingNetwork,
    bitonic_network,
    has_step_property,
    smoothness,
)

__all__ = [
    "Balancer",
    "CountingNetwork",
    "bitonic_network",
    "has_step_property",
    "smoothness",
]
