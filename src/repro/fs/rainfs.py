"""RAINfs — a fault-tolerant distributed file system on the RAIN blocks.

The paper's stated future work (Sec. 7): *"The implementation of a real
distributed file system using the data partitioning schemes developed
here."*  RAINfs is that system, built strictly from the existing
building blocks:

- **data**: every file is split into blocks; each block is
  erasure-coded and spread one-symbol-per-node with the distributed
  store (Sec. 4.2), so files survive n − k node failures;
- **metadata**: a flat namespace owned by the elected leader (ref.
  [29]); every mutation is persisted by erasure-coding the *namespace
  itself* before acknowledging, so a new leader recovers the file
  system from the surviving nodes;
- **transport**: all RPCs ride RUDP; clients discover the leader from
  their own election view and follow redirects.

Write protocol (client side): ``prepare`` (leader allocates a write
ticket) → store the blocks under ticket-scoped ids → ``commit`` (leader
swaps the file's block list, persists metadata, and garbage-collects the
replaced blocks).  A client crash between prepare and commit leaves only
unreferenced blocks; the committed view never shows a torn write.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Optional

from ..election import LeaderElection
from ..membership import MembershipNode
from ..sim import Signal, Simulator
from ..storage import DistributedStore, RetrieveError
from .metadata import FsError, Namespace

__all__ = ["RainFsNode", "RAINFS_SERVICE", "META_OBJECT"]

#: RUDP service name for RAINfs metadata RPC.
RAINFS_SERVICE = "rainfs"
#: Storage object id holding the erasure-coded namespace.
META_OBJECT = "rainfs:namespace"

_req_ids = itertools.count(1)


def _digest(path: str) -> str:
    return hashlib.sha256(path.encode()).hexdigest()[:12]


class RainFsNode:
    """One cluster node's RAINfs agent (server when leader, plus client).

    Every node constructs one of these over its membership node,
    election, and a :class:`DistributedStore`; file operations are
    generator methods used with ``yield from`` inside simulation
    processes.
    """

    def __init__(
        self,
        membership: MembershipNode,
        election: LeaderElection,
        store: DistributedStore,
        block_size: int = 64 * 1024,
        rpc_timeout: float = 3.0,
        max_attempts: int = 30,
    ):
        self.membership = membership
        self.election = election
        self.store = store
        self.sim: Simulator = membership.sim
        self.name = membership.name
        self.block_size = block_size
        self.rpc_timeout = rpc_timeout
        self.max_attempts = max_attempts
        self.transport = store.transport
        # leader-side state
        self.namespace: Optional[Namespace] = None  # None = not recovered
        self._alloc = itertools.count(1)
        self._recovering = False
        # client-side state
        self._pending: dict[int, Signal] = {}
        metrics = self.sim.obs.metrics
        self._m_ops = metrics.counter(
            "fs.rainfs.ops", help="metadata RPCs served by this node as leader"
        )
        # op name -> bound series; the label lookup runs once per op,
        # not once per RPC.
        self._m_op_series: dict[str, object] = {}
        self._m_recoveries = metrics.counter(
            "fs.rainfs.recoveries", help="namespace recoveries performed on takeover"
        ).labels(node=self.name)
        self.transport.register(RAINFS_SERVICE, self._on_msg)
        election.subscribe(self._on_leader_change)
        if election.is_leader:
            self._start_recovery()

    # ------------------------------------------------------------------
    # leadership / metadata recovery
    # ------------------------------------------------------------------

    def _on_leader_change(self, change) -> None:
        if change.leader == self.name:
            self._start_recovery()
        else:
            self.namespace = None  # stale copy must not serve

    def _start_recovery(self) -> None:
        if self._recovering or self.namespace is not None:
            return
        self._recovering = True
        self.sim.process(self._recover_proc(), name=f"rainfs-recover:{self.name}")

    def _recover_proc(self):
        try:
            blob = yield from self.store.retrieve(META_OBJECT)
            ns = Namespace.deserialize(blob)
        except RetrieveError:
            ns = Namespace()  # fresh file system
        if self.election.is_leader:
            self.namespace = ns
            self._m_recoveries.inc()
        self._recovering = False

    def _persist(self):
        """Generator: erasure-code and store the namespace snapshot."""
        assert self.namespace is not None
        yield from self.store.store(META_OBJECT, self.namespace.serialize())

    # ------------------------------------------------------------------
    # RPC server (leader role)
    # ------------------------------------------------------------------

    def _on_msg(self, src: str, msg: tuple) -> None:
        if not self.membership.host.up:
            return
        kind = msg[0]
        if kind == "REQ":
            _, req_id, op, args = msg
            tracer = self.sim.obs.tracer
            self.sim.process(
                self._serve(src, req_id, op, args),
                name=f"rainfs-rpc:{op}",
                # Serve under the inbound request's context so the
                # namespace persist / GC it triggers stays in the trace.
                ctx=tracer.current if tracer is not None else None,
            )
        elif kind == "RES":
            _, req_id, ok, payload = msg
            sig = self._pending.pop(req_id, None)
            if sig is not None and not sig.triggered:
                sig.succeed((ok, payload))

    def _reply(self, dst: str, req_id: int, ok: bool, payload: Any) -> None:
        self.transport.send(dst, RAINFS_SERVICE, ("RES", req_id, ok, payload))

    def _serve(self, src: str, req_id: int, op: str, args: tuple):
        if not self.election.is_leader:
            self._reply(src, req_id, False, ("redirect", self.election.leader))
            return
        if self.namespace is None:
            self._start_recovery()
            self._reply(src, req_id, False, ("notready", None))
            return
        ns = self.namespace
        now = self.sim.now
        series = self._m_op_series.get(op)
        if series is None:
            series = self._m_ops.labels(op=op)
            self._m_op_series[op] = series
        series.inc()
        try:
            if op == "prepare":
                (path,) = args
                ticket = f"{ns.epoch}.{next(self._alloc)}"
                self._reply(src, req_id, True, (_digest(path), ticket))
                return
            if op == "commit":
                path, size, blocks, block_size = args
                if ns.exists(path):
                    old = list(ns.stat(path).blocks)
                    ns.update(path, size, blocks, now)
                else:
                    old = []
                    ns.create(path, block_size, now)
                    ns.update(path, size, blocks, now)
                yield from self._persist()
                # Garbage-collect replaced blocks — but never blocks that
                # are part of the new commit (a client retry re-commits
                # the same block list; GC'ing it would destroy the file).
                live = set(blocks)
                for obj in old:
                    if obj not in live:
                        self.store.drop(obj)
                self._reply(src, req_id, True, ns.stat(path).to_dict())
                return
            if op == "stat":
                (path,) = args
                self._reply(src, req_id, True, ns.stat(path).to_dict())
                return
            if op == "list":
                (prefix,) = args
                self._reply(src, req_id, True, ns.listdir(prefix))
                return
            if op == "delete":
                (path,) = args
                meta = ns.delete(path)
                yield from self._persist()
                for obj in meta.blocks:
                    self.store.drop(obj)
                self._reply(src, req_id, True, None)
                return
            if op == "rename":
                src_path, dst_path = args
                meta = ns.rename(src_path, dst_path, now)
                yield from self._persist()
                self._reply(src, req_id, True, meta.to_dict())
                return
            self._reply(src, req_id, False, ("error", f"unknown op {op}"))
        except FsError as exc:
            self._reply(src, req_id, False, ("error", str(exc)))

    # ------------------------------------------------------------------
    # RPC client
    # ------------------------------------------------------------------

    def _rpc(self, op: str, *args, ctx: Any = None):
        """Generator: call the metadata leader with retry + redirect."""
        last_error = None
        target = self.election.leader or self.name
        tracer = self.sim.obs.tracer
        span = None
        if tracer is not None:
            span = tracer.start("fs.rpc", parent=ctx, node=self.name, op=op)
            ctx = span.ctx
        for attempt in range(self.max_attempts):
            req_id = next(_req_ids)
            sig = Signal(self.sim)
            self._pending[req_id] = sig
            if target == self.name:
                # local fast path still goes through the same handler,
                # activated so the served work keeps this RPC's context
                if tracer is not None:
                    with tracer.activate(ctx):
                        self._on_msg(self.name, ("REQ", req_id, op, args))
                else:
                    self._on_msg(self.name, ("REQ", req_id, op, args))
            else:
                self.transport.send(
                    target, RAINFS_SERVICE, ("REQ", req_id, op, args), ctx=ctx
                )
            fired = yield self.sim.any_of([sig, self.sim.timeout(self.rpc_timeout)])
            if fired is not sig:
                self._pending.pop(req_id, None)
                target = self.election.leader or self.name  # re-resolve
                continue
            ok, payload = sig.value
            if ok:
                if span is not None:
                    tracer.end(span, attempts=attempt + 1)
                return payload
            reason = payload[0]
            if reason == "redirect":
                target = payload[1] or (self.election.leader or self.name)
                yield self.sim.timeout(0.05)
                continue
            if reason == "notready":
                yield self.sim.timeout(0.2)
                continue
            last_error = payload[1]
            if span is not None:
                tracer.end(span, status="error", reason=str(last_error))
            raise FsError(last_error)
        if span is not None:
            tracer.end(span, status="error", reason="attempts_exhausted")
        raise FsError(f"rainfs rpc {op} failed after {self.max_attempts} attempts")

    # ------------------------------------------------------------------
    # file operations (public API)
    # ------------------------------------------------------------------

    def write(self, path: str, data: bytes):
        """Generator: create or replace ``path`` with ``data`` atomically.

        ``yield from fs.write("/a/b", b"...")`` returns the committed
        :class:`FileMeta` dict.
        """
        tracer = self.sim.obs.tracer
        span = None
        ctx = None
        if tracer is not None:
            span = tracer.start("fs.write", node=self.name, path=path, size=len(data))
            ctx = span.ctx
        try:
            file_id, ticket = yield from self._rpc("prepare", path, ctx=ctx)
            blocks = []
            bs = self.block_size
            # memoryview chunks: striping a large file is zero-copy all the
            # way into the encoder (np.frombuffer accepts any buffer).
            mv = memoryview(data)
            chunks = [mv[i : i + bs] for i in range(0, len(data), bs)] or [b""]
            for i, chunk in enumerate(chunks):
                obj = f"blk:{file_id}:{ticket}:{i}"
                yield from self.store.store(obj, chunk, ctx=ctx)
                blocks.append(obj)
            meta = yield from self._rpc("commit", path, len(data), blocks, bs, ctx=ctx)
        except BaseException:
            if span is not None:
                tracer.end(span, status="error")
            raise
        if span is not None:
            tracer.end(span, blocks=len(blocks))
        return meta

    def read(self, path: str):
        """Generator: full contents of ``path``."""
        tracer = self.sim.obs.tracer
        span = None
        ctx = None
        if tracer is not None:
            span = tracer.start("fs.read", node=self.name, path=path)
            ctx = span.ctx
        try:
            meta = yield from self._rpc("stat", path, ctx=ctx)
            parts = []
            for obj in meta["blocks"]:
                parts.append((yield from self.store.retrieve(obj, ctx=ctx)))
        except BaseException:
            if span is not None:
                tracer.end(span, status="error")
            raise
        data = b"".join(parts)
        if span is not None:
            tracer.end(span, size=meta["size"], blocks=len(meta["blocks"]))
        return data[: meta["size"]]

    def read_range(self, path: str, offset: int, length: int):
        """Generator: read ``length`` bytes at ``offset``.

        Only the blocks covering the span are retrieved (and decoded),
        so random reads of a large file cost O(span), not O(file).
        Reads past end-of-file are truncated, as with ``pread``.
        """
        if offset < 0 or length < 0:
            raise FsError("offset and length must be non-negative")
        tracer = self.sim.obs.tracer
        rspan = None
        ctx = None
        if tracer is not None:
            rspan = tracer.start(
                "fs.read", node=self.name, path=path, offset=offset, length=length
            )
            ctx = rspan.ctx
        try:
            meta = yield from self._rpc("stat", path, ctx=ctx)
            size = meta["size"]
            bs = meta["block_size"]
            if offset >= size or length == 0:
                if rspan is not None:
                    tracer.end(rspan, blocks=0)
                return b""
            end = min(offset + length, size)
            first = offset // bs
            last = (end - 1) // bs
            parts = []
            for i in range(first, last + 1):
                parts.append(
                    (yield from self.store.retrieve(meta["blocks"][i], ctx=ctx))
                )
        except BaseException:
            if rspan is not None:
                tracer.end(rspan, status="error")
            raise
        if rspan is not None:
            tracer.end(rspan, blocks=last - first + 1)
        span = b"".join(parts)
        lo = offset - first * bs
        return span[lo : lo + (end - offset)]

    def append(self, path: str, data: bytes):
        """Generator: append by read-modify-write (last committer wins)."""
        try:
            current = yield from self.read(path)
        except FsError:
            current = b""
        meta = yield from self.write(path, current + data)
        return meta

    def stat(self, path: str):
        """Generator: the file's metadata dict."""
        return (yield from self._rpc("stat", path))

    def listdir(self, prefix: str = "/"):
        """Generator: paths under ``prefix``."""
        return (yield from self._rpc("list", prefix))

    def delete(self, path: str):
        """Generator: remove ``path`` and free its blocks."""
        return (yield from self._rpc("delete", path))

    def rename(self, src: str, dst: str):
        """Generator: atomic metadata-only rename."""
        return (yield from self._rpc("rename", src, dst))
