"""RAINfs: the distributed file system of the paper's future work (Sec. 7)."""

from .metadata import FileMeta, FsError, Namespace
from .rainfs import META_OBJECT, RAINFS_SERVICE, RainFsNode

__all__ = [
    "FileMeta",
    "FsError",
    "META_OBJECT",
    "Namespace",
    "RAINFS_SERVICE",
    "RainFsNode",
]
