"""RAINfs metadata model.

The namespace is a flat path → :class:`FileMeta` map (directories are
implicit prefixes, as in object stores).  The whole namespace serializes
to bytes so it can itself be stored erasure-coded across the cluster —
the metadata survives exactly the failures the data does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["FileMeta", "Namespace", "FsError"]


class FsError(Exception):
    """File-system level error (missing path, duplicate create, ...)."""


@dataclass
class FileMeta:
    """Metadata of one file."""

    path: str
    size: int = 0
    block_size: int = 64 * 1024
    blocks: list[str] = field(default_factory=list)  # storage object ids
    version: int = 0  # bumped on every content change
    created_at: float = 0.0
    modified_at: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "path": self.path,
            "size": self.size,
            "block_size": self.block_size,
            "blocks": list(self.blocks),
            "version": self.version,
            "created_at": self.created_at,
            "modified_at": self.modified_at,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FileMeta":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            path=d["path"],
            size=d["size"],
            block_size=d["block_size"],
            blocks=list(d["blocks"]),
            version=d["version"],
            created_at=d["created_at"],
            modified_at=d["modified_at"],
        )


def _valid_path(path: str) -> bool:
    return (
        path.startswith("/")
        and path == path.strip()
        and "//" not in path
        and path != "/"
        and not path.endswith("/")
    )


class Namespace:
    """The full file namespace plus a monotone epoch counter.

    ``epoch`` increments on every mutation; it orders persisted
    snapshots so a recovering metadata leader can tell which one is
    newest.
    """

    def __init__(self):
        self.files: dict[str, FileMeta] = {}
        self.epoch = 0

    # -- mutations (leader-side) --------------------------------------------

    def create(self, path: str, block_size: int, now: float) -> FileMeta:
        """Add an empty file at ``path``; rejects invalid/duplicate paths."""
        if not _valid_path(path):
            raise FsError(f"invalid path {path!r}")
        if path in self.files:
            raise FsError(f"file exists: {path}")
        meta = FileMeta(
            path=path, block_size=block_size, created_at=now, modified_at=now
        )
        self.files[path] = meta
        self.epoch += 1
        return meta

    def update(self, path: str, size: int, blocks: list[str], now: float) -> FileMeta:
        """Swap in a new block list (a committed write); bumps version."""
        meta = self.stat(path)
        meta.size = size
        meta.blocks = list(blocks)
        meta.version += 1
        meta.modified_at = now
        self.epoch += 1
        return meta

    def delete(self, path: str) -> FileMeta:
        """Remove ``path``; returns its metadata (for block GC)."""
        meta = self.stat(path)
        del self.files[path]
        self.epoch += 1
        return meta

    def rename(self, src: str, dst: str, now: float) -> FileMeta:
        """Metadata-only move of ``src`` to ``dst``."""
        if not _valid_path(dst):
            raise FsError(f"invalid path {dst!r}")
        if dst in self.files:
            raise FsError(f"file exists: {dst}")
        meta = self.stat(src)
        del self.files[src]
        meta.path = dst
        meta.modified_at = now
        self.files[dst] = meta
        self.epoch += 1
        return meta

    # -- queries ----------------------------------------------------------

    def stat(self, path: str) -> FileMeta:
        """Metadata of ``path``; raises :class:`FsError` when missing."""
        meta = self.files.get(path)
        if meta is None:
            raise FsError(f"no such file: {path}")
        return meta

    def exists(self, path: str) -> bool:
        """Whether ``path`` is a file."""
        return path in self.files

    def listdir(self, prefix: str = "/") -> list[str]:
        """Paths under ``prefix`` (a directory-like string)."""
        if not prefix.endswith("/"):
            prefix = prefix + "/"
        if prefix == "/":
            return sorted(self.files)
        return sorted(p for p in self.files if p.startswith(prefix))

    # -- persistence --------------------------------------------------------

    def serialize(self) -> bytes:
        """The whole namespace as bytes (stored erasure-coded)."""
        doc = {
            "epoch": self.epoch,
            "files": [m.to_dict() for m in self.files.values()],
        }
        return json.dumps(doc, sort_keys=True).encode()

    @classmethod
    def deserialize(cls, blob: bytes) -> "Namespace":
        """Rebuild a namespace from :meth:`serialize` output."""
        doc = json.loads(blob.decode())
        ns = cls()
        ns.epoch = doc["epoch"]
        for d in doc["files"]:
            meta = FileMeta.from_dict(d)
            ns.files[meta.path] = meta
        return ns
