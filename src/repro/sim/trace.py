"""Structured tracing and counters for simulations.

Protocol experiments in the paper are judged by *traces* — e.g. the
sequence of Up/Down transitions each endpoint of a channel observed
(Fig. 6), or the path the membership token took around the ring (Fig. 9).
This module records such traces uniformly so tests and benchmarks can
assert on them.

.. deprecated::
    :class:`Tracer` and :class:`StatCounters` are retained as thin shims
    over the unified observability layer (:mod:`repro.obs`).  When
    constructed with a ``bus``/``registry``, every record and counter
    update is mirrored onto the :class:`repro.obs.EventBus` /
    :class:`repro.obs.MetricsRegistry`, which is where new code should
    subscribe.  See docs/reproduction_notes.md for the migration path.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import EventBus, MetricsRegistry

__all__ = ["TraceRecord", "Tracer", "StatCounters"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    category: str
    message: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" {self.data}" if self.data else ""
        return f"[{self.time:12.6f}] {self.category}: {self.message}{extra}"


class Tracer:
    """Collects :class:`TraceRecord` entries and per-category counters.

    A tracer can be attached to any component; ``enabled_categories``
    limits recording (None = record everything).  When ``bus`` is given,
    every record — filtered or not — is republished on the event bus
    under ``{topic}.{category}``, making the tracer a compatibility shim
    over :class:`repro.obs.EventBus`.
    """

    def __init__(
        self,
        enabled_categories: Optional[Iterable[str]] = None,
        bus: Optional["EventBus"] = None,
        topic: str = "trace",
    ):
        self.records: list[TraceRecord] = []
        self.enabled = set(enabled_categories) if enabled_categories is not None else None
        self.counts: Counter[str] = Counter()
        self.bus = bus
        self.topic = topic
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._topics: dict[str, str] = {}

    def record(
        self,
        time: float,
        category: str,
        message: str | Callable[[], str],
        **data: Any,
    ) -> None:
        """Append a record (no-op if the category is filtered out).

        ``message`` may be a zero-argument callable; it is rendered only
        when someone actually observes the record (a bus subscriber, the
        records list, or a tracer subscriber), so hot paths can defer
        string formatting on unobserved simulations.

        Note that ``counts`` tallies *every* call, including records a
        category filter keeps out of ``records`` — the counter tracks
        what happened, the list tracks what was retained.
        """
        self.counts[category] += 1
        text: Optional[str] = message if isinstance(message, str) else None
        bus = self.bus
        if bus is not None:
            topic = self._topics.get(category)
            if topic is None:
                topic = f"{self.topic}.{category}"
                self._topics[category] = topic
            if bus.has_subscribers:
                if text is None:
                    text = message()
                bus.publish(topic, message=text, **data)
            else:
                bus.publish(topic)  # count-only fast path
        if self.enabled is not None and category not in self.enabled:
            return
        if text is None:
            text = message()
        rec = TraceRecord(time, category, text, data)
        self.records.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` on every record as it is captured."""
        self._subscribers.append(fn)

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def between(self, t0: float, t1: float) -> list[TraceRecord]:
        """Records with ``t0 <= time < t1``."""
        return [r for r in self.records if t0 <= r.time < t1]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all records, counters, and the category→topic memo.

        The memo must reset with the rest of the state: a tracer whose
        ``topic`` is re-pointed after ``clear()`` would otherwise keep
        publishing under the stale topic names."""
        self.records.clear()
        self.counts.clear()
        self._topics.clear()


class StatCounters:
    """Scalar accumulators (sums, maxima, time series) for benchmarks.

    When ``registry`` is given, every accumulator is mirrored into the
    metrics registry under ``{prefix}.{key}`` — ``add`` to a counter,
    ``observe_max`` to a gauge, ``sample`` to a histogram — so legacy
    call sites feed the unified observability layer for free.
    """

    def __init__(
        self,
        registry: Optional["MetricsRegistry"] = None,
        prefix: str = "stats",
    ):
        self.sums: defaultdict[str, float] = defaultdict(float)
        self.maxima: dict[str, float] = {}
        self.series: defaultdict[str, list[tuple[float, float]]] = defaultdict(list)
        self.registry = registry
        self.prefix = prefix
        # key -> bound registry series, so hot counters skip the family
        # lookup + label sort on every update.
        self._bound_counters: dict[str, Any] = {}
        self._bound_gauges: dict[str, Any] = {}
        self._bound_hists: dict[str, Any] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into counter ``key``."""
        self.sums[key] += amount
        if self.registry is not None:
            series = self._bound_counters.get(key)
            if series is None:
                series = self.registry.counter(f"{self.prefix}.{key}").labels()
                self._bound_counters[key] = series
            series.inc(amount)

    def observe_max(self, key: str, value: float) -> None:
        """Track the running maximum of ``key``."""
        cur = self.maxima.get(key)
        if cur is None or value > cur:
            self.maxima[key] = value
            if self.registry is not None:
                series = self._bound_gauges.get(key)
                if series is None:
                    series = self.registry.gauge(f"{self.prefix}.{key}.max").labels()
                    self._bound_gauges[key] = series
                series.set(value)

    def sample(self, key: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to the time series ``key``."""
        self.series[key].append((time, value))
        if self.registry is not None:
            series = self._bound_hists.get(key)
            if series is None:
                series = self.registry.histogram(f"{self.prefix}.{key}").labels()
                self._bound_hists[key] = series
            series.observe(value)

    def rate(self, key: str, duration: float) -> float:
        """Counter ``key`` divided by ``duration`` (0 for empty/zero)."""
        if duration <= 0:
            return 0.0
        return self.sums.get(key, 0.0) / duration
