"""Discrete-event simulation kernel.

The RAIN paper's testbed is a physical cluster; this kernel replaces it
with a deterministic discrete-event simulator so that protocol behaviour
(message orderings, timeouts, faults) can be reproduced and explored
exhaustively.  The design follows the usual DES pattern: a priority queue
of timestamped events, plus generator-coroutine *processes* in the style
of SimPy, so protocol code reads sequentially::

    def client(sim, q):
        yield sim.timeout(1.0)
        item = yield q.get()
        ...

    sim = Simulator(seed=42)
    sim.process(client(sim, q))
    sim.run(until=100.0)

Only simulated time exists here; nothing in this package touches wall
clocks, threads, or real sockets.

Hot-path notes (see docs/architecture.md, "Performance"): every class a
simulation allocates per event carries ``__slots__``; :meth:`Simulator.run`
drains the heap with a single pop per event; cancelled entries are
compacted lazily once they dominate the heap; and the dominant
``yield sim.timeout(d)`` pattern resumes the process directly from the
timeout's own event when no other event shares the timestamp — skipping
the intermediate callback hop without changing the observable order.
Kernel counters are plain ints, flushed into the metrics registry only
when a snapshot or query asks for them.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Waitable",
    "Signal",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _ScheduledCall:
    """A cancellable callback scheduled on the event queue.

    ``cancelled`` doubles as a *consumed* flag: the event loop marks a
    call just before executing it, so ``cancel()`` after the fact is an
    idempotent no-op and never skews the lazy-compaction bookkeeping.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(self, sim: "Simulator", time: float, fn: Callable, args: tuple):
        self._sim = sim
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._note_cancel()


class Waitable:
    """Base class for anything a process may ``yield``.

    A waitable is *triggered* at most once, either successfully (with a
    value) or with an exception.  Callbacks added after triggering run
    immediately at the current simulation time.
    """

    __slots__ = ("sim", "_done", "_ok", "_value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._ok = True
        self._value: Any = None
        self._callbacks: list[Callable[["Waitable"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the waitable has fired (successfully or not)."""
        return self._done

    @property
    def value(self) -> Any:
        """The success value (or exception) this waitable fired with."""
        if not self._done:
            raise SimulationError("waitable has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Waitable":
        """Trigger successfully with ``value``; wakes all waiters."""
        if self._done:
            raise SimulationError("waitable already triggered")
        self._done = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Waitable":
        """Trigger with exception ``exc``; waiters receive it as a throw."""
        if self._done:
            raise SimulationError("waitable already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._done = True
        self._ok = False
        self._value = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim._schedule_call(0.0, cb, (self,))

    def add_callback(self, cb: Callable[["Waitable"], None]) -> None:
        """Run ``cb(self)`` once this waitable triggers."""
        if self._done:
            self.sim._schedule_call(0.0, cb, (self,))
        else:
            self._callbacks.append(cb)

    def discard_callback(self, cb: Callable[["Waitable"], None]) -> None:
        """Remove a pending callback if present."""
        try:
            self._callbacks.remove(cb)
        except ValueError:
            pass


class Signal(Waitable):
    """A one-shot event that application code triggers explicitly."""

    __slots__ = ()


class Timeout(Waitable):
    """A waitable that fires after a fixed simulated delay.

    When a single process waits on a timeout (the dominant kernel
    pattern), the process is linked through ``_proc`` instead of a
    callback; :meth:`_fire` then resumes it directly — in the same heap
    pop — whenever no other event shares the current timestamp, falling
    back to an ordinary scheduled resume otherwise so the observable
    event order is identical either way.
    """

    __slots__ = ("delay", "_call", "_proc")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._proc: Optional["Process"] = None
        self._call = sim._schedule_call(delay, self._fire, (value,))

    def _fire(self, value: Any) -> None:
        if self._done:
            return
        proc = self._proc
        if proc is not None:
            self._proc = None
            if not self._callbacks:
                sim = self.sim
                self._done = True
                self._ok = True
                self._value = value
                times = sim._times
                if not times or times[0] > sim._now:
                    # No other event at this instant can observe the
                    # intermediate hop: resume the process here.  Count
                    # the elided resume event so metrics are unchanged.
                    sim._n_events += 1
                    proc._on_fired(self)
                else:
                    sim._schedule_call(0.0, proc._on_fired, (self,))
                return
            # A second waiter subscribed after the process: restore the
            # plain callback path, preserving registration order.
            self._callbacks.insert(0, proc._on_fired)
        self.succeed(value)

    def add_callback(self, cb: Callable[["Waitable"], None]) -> None:
        if self._proc is not None:
            # Demote the fast link so dispatch order stays registration
            # order (the linked process subscribed first).
            self._callbacks.append(self._proc._on_fired)
            self._proc = None
        super().add_callback(cb)

    def cancel(self) -> None:
        """Cancel the pending timeout; it will never fire."""
        self._call.cancel()


class AnyOf(Waitable):
    """Fires when the first of several waitables fires.

    The value is the waitable that fired first.  Failures propagate.
    """

    __slots__ = ("waitables",)

    def __init__(self, sim: "Simulator", waitables: Iterable[Waitable]):
        super().__init__(sim)
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf requires at least one waitable")
        for w in self.waitables:
            w.add_callback(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._done:
            return
        if child._ok:
            self.succeed(child)
        else:
            self.fail(child._value)
        # Detach from the losers so they do not keep this AnyOf alive and
        # do not schedule a dead callback if they fire later.
        for w in self.waitables:
            if w is not child and not w._done:
                w.discard_callback(self._on_child)


class AllOf(Waitable):
    """Fires when every given waitable has fired.

    The value is the list of child values in the original order.
    """

    __slots__ = ("waitables", "_remaining")

    def __init__(self, sim: "Simulator", waitables: Iterable[Waitable]):
        super().__init__(sim)
        self.waitables = list(waitables)
        self._remaining = len(self.waitables)
        if self._remaining == 0:
            sim._schedule_call(0.0, self._finish, ())
        for w in self.waitables:
            w.add_callback(self._on_child)

    def _finish(self) -> None:
        if not self._done:
            self.succeed([w._value for w in self.waitables])

    def _on_child(self, child: Waitable) -> None:
        if self._done:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._finish()


class Process(Waitable):
    """A generator-coroutine driven by the simulator.

    The generator yields :class:`Waitable` objects; the process resumes
    (with the waitable's value sent in) when each fires.  The process
    itself is a waitable that triggers with the generator's return value,
    so processes can wait on each other.
    """

    __slots__ = ("gen", "name", "ctx", "_waiting_on", "_wait_since", "_defused")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator,
        name: Optional[str] = None,
        ctx: Any = None,
    ):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process target must be a generator, got {type(gen).__name__}"
            )
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        #: Optional causal SpanContext carried by this process: when set
        #: (and a tracer is installed) every resumption of the generator
        #: runs with it activated, so spans started inside parent to it.
        self.ctx = ctx
        self._waiting_on: Optional[Waitable] = None
        self._wait_since = 0.0
        self._defused = False
        sim._n_processes += 1
        sim._schedule_call(0.0, self._step, (None, None))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from its wait target (the
        target may still fire later, the process just no longer cares).
        """
        if self._done:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self.sim._schedule_call(0.0, self._deliver_interrupt, (Interrupt(cause),))

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self._done:
            return  # finished in the meantime; interrupt is moot
        w = self._waiting_on
        if w is not None:
            if type(w) is Timeout and w._proc is self:
                w._proc = None
            else:
                w.discard_callback(self._on_fired)
            self._waiting_on = None
        self._step(None, exc)

    def _on_fired(self, target: Waitable) -> None:
        if self._done or self._waiting_on is not target:
            return
        self._waiting_on = None
        sim = self.sim
        sim._observe_wait(sim._now - self._wait_since)
        if target._ok:
            self._step(target._value, None)
        else:
            self._step(None, target._value)

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        # Causal-context prologue: almost always self.ctx is None (one
        # slot load + None check); a carried context is pushed onto the
        # tracer's activation stack for the duration of the resumption.
        tstack = None
        if self.ctx is not None:
            tracer = self.sim.obs.tracer
            if tracer is not None:
                tstack = tracer._stack
                tstack.append(self.ctx)
        try:
            try:
                if throw_exc is not None:
                    target = self.gen.throw(throw_exc)
                else:
                    target = self.gen.send(send_value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to waiters
                if isinstance(exc, StopSimulation):
                    raise
                self._done = True
                self._ok = False
                self._value = exc
                if self._callbacks:
                    self._dispatch()
                else:
                    # No one is waiting on this process: crash the simulation
                    # so bugs are loud rather than silently swallowed.
                    raise
                return
            self._waiting_on = target
            self._wait_since = self.sim._now
            if type(target) is Timeout:
                if target._proc is None and not target._done and not target._callbacks:
                    target._proc = self
                else:
                    target.add_callback(self._on_fired)
                return
            if not isinstance(target, Waitable):
                self._waiting_on = None
                self.gen.close()
                raise SimulationError(
                    f"process {self.name} yielded {target!r}, not a Waitable"
                )
            target.add_callback(self._on_fired)
        finally:
            if tstack is not None:
                tstack.pop()


class Simulator:
    """The discrete-event scheduler.

    Parameters
    ----------
    seed:
        Master seed for the per-component RNG streams available through
        :attr:`rng` (see :mod:`repro.sim.rng`).
    """

    #: Cancelled entries tolerated on the heap before compaction is even
    #: considered (compaction itself triggers once they exceed half).
    _COMPACT_MIN = 64

    #: Whether this simulator's metrics registry keeps exact partial
    #: sums.  Plain simulators use ordinary running floats (cheapest and
    #: byte-stable against existing goldens); shard kernels flip this so
    #: per-shard observations merge independently of interleaving.
    _EXACT_OBS = False

    def __init__(self, seed: int = 0):
        from ..obs import Observability
        from .rng import RngRegistry  # local import to avoid cycle

        self._now = 0.0
        # The event queue is a heap of *distinct* timestamps plus a FIFO
        # bucket per timestamp (a bare _ScheduledCall, promoted to a
        # deque on the first collision).  Equal-time events run in
        # insertion order — exactly the order a (time, seq) tuple heap
        # would give — while heap traffic happens once per distinct
        # instant and compares bare floats instead of tuples.
        self._times: list[float] = []
        self._buckets: dict[float, Any] = {}
        self._n_queued = 0
        self._n_cancelled = 0
        self.rng = RngRegistry(seed)
        self._stopped = False
        #: per-simulation observability hub (metrics registry + event bus)
        self.obs = Observability(lambda: self._now, exact_sums=self._EXACT_OBS)
        self._m_events = self.obs.metrics.counter(
            "sim.kernel.events", help="callbacks dispatched by the event loop"
        ).labels()
        self._m_processes = self.obs.metrics.counter(
            "sim.kernel.processes", help="processes launched"
        ).labels()
        self._m_wait = self.obs.metrics.histogram(
            "sim.process.wait_time",
            help="simulated seconds a process waited before each resumption",
        ).labels()
        # Kernel hot counters: plain ints/floats on the hot path, pushed
        # into the registry series above only when a snapshot/query runs.
        self._n_events = 0
        self._n_processes = 0
        self._wait_bounds = self._m_wait.bounds
        self._wait_counts = [0] * (len(self._wait_bounds) + 1)
        self._wait_n = 0
        self._wait_sum = 0.0
        self._wait_min: Optional[float] = None
        self._wait_max: Optional[float] = None
        self.obs.metrics.add_flush_hook(self._flush_kernel_metrics)

    # -- time ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- metrics ------------------------------------------------------

    def _observe_wait(self, delay: float) -> None:
        # Inline histogram aggregation, same arithmetic order as
        # Histogram.observe so flushed values are bit-identical.
        self._wait_counts[bisect_left(self._wait_bounds, delay)] += 1
        self._wait_n += 1
        self._wait_sum += delay
        if self._wait_min is None or delay < self._wait_min:
            self._wait_min = delay
        if self._wait_max is None or delay > self._wait_max:
            self._wait_max = delay

    def credit_events(self, n: int) -> None:
        """Credit ``n`` elided callbacks to the kernel event counter.

        Fused fast paths — the network's whole-path packet walk, batched
        link delivery — execute work the per-object pipeline would have
        dispatched as ``n`` extra kernel callbacks; crediting keeps the
        ``sim.kernel.events`` metric counting *logical* events, invariant
        under the fusion optimizations.
        """
        self._n_events += n

    def _flush_kernel_metrics(self) -> None:
        self._m_events.value = float(self._n_events)
        self._m_processes.value = float(self._n_processes)
        h = self._m_wait
        h.bucket_counts = list(self._wait_counts)
        h.count = self._wait_n
        h.sum = self._wait_sum
        h.min = self._wait_min
        h.max = self._wait_max

    # -- scheduling primitives ----------------------------------------

    def _schedule_call(self, delay: float, fn: Callable, args: tuple) -> _ScheduledCall:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        t = self._now + delay
        call = _ScheduledCall(self, t, fn, args)
        buckets = self._buckets
        b = buckets.get(t)
        if b is None:
            buckets[t] = call
            heapq.heappush(self._times, t)
        elif type(b) is deque:
            b.append(call)
        else:
            buckets[t] = deque((b, call))
        self._n_queued += 1
        return call

    def _note_cancel(self) -> None:
        n = self._n_cancelled + 1
        self._n_cancelled = n
        if n > self._COMPACT_MIN and 2 * n > self._n_queued:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the time heap.

        Buckets keep their insertion order, so FIFO order among
        equal-time events survives compaction.  Both containers are
        updated in place so a running drain loop sees the result.
        """
        buckets = self._buckets
        dead: list[float] = []
        live = 0
        for t, b in buckets.items():
            if type(b) is deque:
                kept = [c for c in b if not c.cancelled]
                if kept:
                    b.clear()
                    b.extend(kept)
                    live += len(kept)
                else:
                    dead.append(t)
            elif b.cancelled:
                dead.append(t)
            else:
                live += 1
        for t in dead:
            del buckets[t]
        times = self._times
        times[:] = buckets.keys()
        heapq.heapify(times)
        self._n_queued = live
        self._n_cancelled = 0

    def call_in(self, delay: float, fn: Callable, *args: Any) -> _ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds; returns a handle
        whose ``cancel()`` prevents the call."""
        return self._schedule_call(delay, fn, args)

    def call_at(self, time: float, fn: Callable, *args: Any) -> _ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        return self._schedule_call(time - self._now, fn, args)

    # -- waitable factories --------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A waitable firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Signal:
        """A fresh untriggered :class:`Signal`."""
        return Signal(self)

    def any_of(self, waitables: Iterable[Waitable]) -> AnyOf:
        """Fires with the first of ``waitables`` to fire."""
        return AnyOf(self, waitables)

    def all_of(self, waitables: Iterable[Waitable]) -> AllOf:
        """Fires when all ``waitables`` have fired."""
        return AllOf(self, waitables)

    def process(
        self, gen: Generator, name: Optional[str] = None, ctx: Any = None
    ) -> Process:
        """Launch ``gen`` as a simulation process.

        ``ctx`` optionally carries a causal :class:`~repro.obs.SpanContext`
        activated around every resumption of the generator.
        """
        return Process(self, gen, name, ctx)

    # -- execution ------------------------------------------------------

    @property
    def n_events(self) -> int:
        """Callbacks dispatched so far (the ``sim.kernel.events`` metric,
        read without forcing a registry flush — the control plane polls
        this between steps)."""
        return self._n_events

    def stop(self) -> None:
        """Halt :meth:`run` after the current callback returns."""
        self._stopped = True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            if type(b) is deque:
                while b and b[0].cancelled:
                    b.popleft()
                    self._n_queued -= 1
                    self._n_cancelled -= 1
                if b:
                    return t
                del buckets[t]
                heapq.heappop(times)
            elif b.cancelled:
                del buckets[t]
                heapq.heappop(times)
                self._n_queued -= 1
                self._n_cancelled -= 1
            else:
                return t
        return float("inf")

    def step(self) -> bool:
        """Run a single event; returns False when the queue is empty."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            if type(b) is deque:
                call = b.popleft()
                if not b:
                    del buckets[t]
                    heapq.heappop(times)
            else:
                call = b
                del buckets[t]
                heapq.heappop(times)
            self._n_queued -= 1
            if call.cancelled:
                self._n_cancelled -= 1
                continue
            if t < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            if t > self._now:
                self._now = t
            self._n_events += 1
            call.cancelled = True  # consumed; a late cancel() is a no-op
            call.fn(*call.args)
            return True
        return False

    def run_events(self, n: int, until: Optional[float] = None) -> int:
        """Run at most ``n`` events (bounded by ``until`` when given).

        The control plane's run-to-event-count stepping: dispatches up
        to ``n`` callbacks via :meth:`step`, never past ``until``, and
        returns how many actually ran (fewer means the queue drained or
        the bound was reached first).  Unlike :meth:`run` the clock is
        *not* advanced to ``until`` on exhaustion — a subsequent
        bounded :meth:`run` composes exactly as if the events had been
        executed by it directly, which is what keeps driver-stepped
        runs byte-identical to batch runs.
        """
        if n < 0:
            raise SimulationError(f"cannot run a negative event count: {n}")
        bound = float("inf") if until is None else until
        ran = 0
        while ran < n:
            if self.peek() > bound:
                break
            if not self.step():
                break
            ran += 1
        return ran

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time at exit.  When ``until`` is given the
        clock is advanced to exactly ``until`` even if the last event was
        earlier, so successive bounded runs compose predictably.
        """
        self._stopped = False
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        bound = float("inf") if until is None else until
        n_events = 0
        now = self._now
        try:
            while times:
                t = times[0]
                if t > bound:
                    break
                b = buckets[t]
                if type(b) is deque:
                    call = b.popleft()
                    if not b:
                        del buckets[t]
                        heappop(times)
                else:
                    call = b
                    del buckets[t]
                    heappop(times)
                self._n_queued -= 1
                if call.cancelled:
                    self._n_cancelled -= 1
                    continue
                if t < now - 1e-12:
                    raise SimulationError("event queue time went backwards")
                if t > now:
                    now = t
                    self._now = t
                n_events += 1
                call.cancelled = True  # consumed; a late cancel() is a no-op
                call.fn(*call.args)
                if self._stopped:
                    break
                now = self._now
        finally:
            self._n_events += n_events
        if not self._stopped and until is not None and self._now < until:
            self._now = until
        return self._now

    def run_process(self, gen: Generator, until: Optional[float] = None) -> Any:
        """Convenience: run ``gen`` as a process to completion, return its value.

        The simulation stops as soon as the process finishes (the clock
        does not run on to ``until``), so sequential ``run_process``
        calls compose naturally.  Raises ``TimeoutError`` if the process
        has not finished by ``until`` (when given) or when the event
        queue drains first.
        """
        proc = self.process(gen)
        proc._defused = True
        proc.add_callback(lambda _w: self.stop())
        self.run(until=until)
        if not proc.triggered:
            raise TimeoutError(f"process {proc.name} did not finish by t={self._now}")
        if not proc._ok:
            raise proc._value
        return proc._value
