"""Discrete-event simulation kernel.

The RAIN paper's testbed is a physical cluster; this kernel replaces it
with a deterministic discrete-event simulator so that protocol behaviour
(message orderings, timeouts, faults) can be reproduced and explored
exhaustively.  The design follows the usual DES pattern: a priority queue
of timestamped events, plus generator-coroutine *processes* in the style
of SimPy, so protocol code reads sequentially::

    def client(sim, q):
        yield sim.timeout(1.0)
        item = yield q.get()
        ...

    sim = Simulator(seed=42)
    sim.process(client(sim, q))
    sim.run(until=100.0)

Only simulated time exists here; nothing in this package touches wall
clocks, threads, or real sockets.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Waitable",
    "Signal",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _ScheduledCall:
    """A cancellable callback scheduled on the event queue."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable, args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True


class Waitable:
    """Base class for anything a process may ``yield``.

    A waitable is *triggered* at most once, either successfully (with a
    value) or with an exception.  Callbacks added after triggering run
    immediately at the current simulation time.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._done = False
        self._ok = True
        self._value: Any = None
        self._callbacks: list[Callable[["Waitable"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the waitable has fired (successfully or not)."""
        return self._done

    @property
    def value(self) -> Any:
        """The success value (or exception) this waitable fired with."""
        if not self._done:
            raise SimulationError("waitable has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Waitable":
        """Trigger successfully with ``value``; wakes all waiters."""
        if self._done:
            raise SimulationError("waitable already triggered")
        self._done = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Waitable":
        """Trigger with exception ``exc``; waiters receive it as a throw."""
        if self._done:
            raise SimulationError("waitable already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._done = True
        self._ok = False
        self._value = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim._schedule_call(0.0, cb, (self,))

    def add_callback(self, cb: Callable[["Waitable"], None]) -> None:
        """Run ``cb(self)`` once this waitable triggers."""
        if self._done:
            self.sim._schedule_call(0.0, cb, (self,))
        else:
            self._callbacks.append(cb)

    def discard_callback(self, cb: Callable[["Waitable"], None]) -> None:
        """Remove a pending callback if present."""
        try:
            self._callbacks.remove(cb)
        except ValueError:
            pass


class Signal(Waitable):
    """A one-shot event that application code triggers explicitly."""


class Timeout(Waitable):
    """A waitable that fires after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._call = sim._schedule_call(delay, self._fire, (value,))

    def _fire(self, value: Any) -> None:
        if not self._done:
            self.succeed(value)

    def cancel(self) -> None:
        """Cancel the pending timeout; it will never fire."""
        self._call.cancel()


class AnyOf(Waitable):
    """Fires when the first of several waitables fires.

    The value is the waitable that fired first.  Failures propagate.
    """

    def __init__(self, sim: "Simulator", waitables: Iterable[Waitable]):
        super().__init__(sim)
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf requires at least one waitable")
        for w in self.waitables:
            w.add_callback(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._done:
            return
        if child._ok:
            self.succeed(child)
        else:
            self.fail(child._value)


class AllOf(Waitable):
    """Fires when every given waitable has fired.

    The value is the list of child values in the original order.
    """

    def __init__(self, sim: "Simulator", waitables: Iterable[Waitable]):
        super().__init__(sim)
        self.waitables = list(waitables)
        self._remaining = len(self.waitables)
        if self._remaining == 0:
            sim._schedule_call(0.0, self._finish, ())
        for w in self.waitables:
            w.add_callback(self._on_child)

    def _finish(self) -> None:
        if not self._done:
            self.succeed([w._value for w in self.waitables])

    def _on_child(self, child: Waitable) -> None:
        if self._done:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._finish()


class Process(Waitable):
    """A generator-coroutine driven by the simulator.

    The generator yields :class:`Waitable` objects; the process resumes
    (with the waitable's value sent in) when each fires.  The process
    itself is a waitable that triggers with the generator's return value,
    so processes can wait on each other.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process target must be a generator, got {type(gen).__name__}"
            )
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Waitable] = None
        self._wait_since = 0.0
        self._defused = False
        sim._m_processes.inc()
        sim._schedule_call(0.0, self._step, (None, None))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from its wait target (the
        target may still fire later, the process just no longer cares).
        """
        if self._done:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self.sim._schedule_call(0.0, self._deliver_interrupt, (Interrupt(cause),))

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self._done:
            return  # finished in the meantime; interrupt is moot
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._on_fired)
            self._waiting_on = None
        self._step(None, exc)

    def _on_fired(self, target: Waitable) -> None:
        if self._done or self._waiting_on is not target:
            return
        self._waiting_on = None
        self.sim._m_wait.observe(self.sim.now - self._wait_since)
        if target._ok:
            self._step(target._value, None)
        else:
            self._step(None, target._value)

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        try:
            if throw_exc is not None:
                target = self.gen.throw(throw_exc)
            else:
                target = self.gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if isinstance(exc, StopSimulation):
                raise
            self._done = True
            self._ok = False
            self._value = exc
            if self._callbacks:
                self._dispatch()
            else:
                # No one is waiting on this process: crash the simulation
                # so bugs are loud rather than silently swallowed.
                raise
            return
        if not isinstance(target, Waitable):
            self.gen.close()
            raise SimulationError(
                f"process {self.name} yielded {target!r}, not a Waitable"
            )
        self._waiting_on = target
        self._wait_since = self.sim.now
        target.add_callback(self._on_fired)


class Simulator:
    """The discrete-event scheduler.

    Parameters
    ----------
    seed:
        Master seed for the per-component RNG streams available through
        :attr:`rng` (see :mod:`repro.sim.rng`).
    """

    def __init__(self, seed: int = 0):
        from ..obs import Observability
        from .rng import RngRegistry  # local import to avoid cycle

        self._now = 0.0
        self._queue: list[tuple[float, int, _ScheduledCall]] = []
        self._counter = itertools.count()
        self.rng = RngRegistry(seed)
        self._stopped = False
        #: per-simulation observability hub (metrics registry + event bus)
        self.obs = Observability(lambda: self._now)
        self._m_events = self.obs.metrics.counter(
            "sim.kernel.events", help="callbacks dispatched by the event loop"
        ).labels()
        self._m_processes = self.obs.metrics.counter(
            "sim.kernel.processes", help="processes launched"
        ).labels()
        self._m_wait = self.obs.metrics.histogram(
            "sim.process.wait_time",
            help="simulated seconds a process waited before each resumption",
        ).labels()

    # -- time ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling primitives ----------------------------------------

    def _schedule_call(self, delay: float, fn: Callable, args: tuple) -> _ScheduledCall:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        call = _ScheduledCall(self._now + delay, fn, args)
        heapq.heappush(self._queue, (call.time, next(self._counter), call))
        return call

    def call_in(self, delay: float, fn: Callable, *args: Any) -> _ScheduledCall:
        """Schedule ``fn(*args)`` after ``delay`` seconds; returns a handle
        whose ``cancel()`` prevents the call."""
        return self._schedule_call(delay, fn, args)

    def call_at(self, time: float, fn: Callable, *args: Any) -> _ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        return self._schedule_call(time - self._now, fn, args)

    # -- waitable factories --------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A waitable firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Signal:
        """A fresh untriggered :class:`Signal`."""
        return Signal(self)

    def any_of(self, waitables: Iterable[Waitable]) -> AnyOf:
        """Fires with the first of ``waitables`` to fire."""
        return AnyOf(self, waitables)

    def all_of(self, waitables: Iterable[Waitable]) -> AllOf:
        """Fires when all ``waitables`` have fired."""
        return AllOf(self, waitables)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Launch ``gen`` as a simulation process."""
        return Process(self, gen, name)

    # -- execution ------------------------------------------------------

    def stop(self) -> None:
        """Halt :meth:`run` after the current callback returns."""
        self._stopped = True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> bool:
        """Run a single event; returns False when the queue is empty."""
        while self._queue:
            _, _, call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            if call.time < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self._now = max(self._now, call.time)
            self._m_events.inc()
            call.fn(*call.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time at exit.  When ``until`` is given the
        clock is advanced to exactly ``until`` even if the last event was
        earlier, so successive bounded runs compose predictably.
        """
        self._stopped = False
        while not self._stopped:
            nxt = self.peek()
            if nxt == float("inf"):
                break
            if until is not None and nxt > until:
                break
            self.step()
        if not self._stopped and until is not None and self._now < until:
            self._now = until
        return self._now

    def run_process(self, gen: Generator, until: Optional[float] = None) -> Any:
        """Convenience: run ``gen`` as a process to completion, return its value.

        The simulation stops as soon as the process finishes (the clock
        does not run on to ``until``), so sequential ``run_process``
        calls compose naturally.  Raises ``TimeoutError`` if the process
        has not finished by ``until`` (when given) or when the event
        queue drains first.
        """
        proc = self.process(gen)
        proc._defused = True
        proc.add_callback(lambda _w: self.stop())
        self.run(until=until)
        if not proc.triggered:
            raise TimeoutError(f"process {proc.name} did not finish by t={self._now}")
        if not proc._ok:
            raise proc._value
        return proc._value
