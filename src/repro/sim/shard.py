"""Sharded, conservative parallel discrete-event simulation.

A :class:`ShardedSimulator` partitions a cluster across N
:class:`ShardKernel` instances — each a full :class:`Simulator` with its
own event queue, RNG streams, and observability hub — and advances them
in *lookahead windows*: every kernel runs independently over the window
``(V, V + L]`` (L = the minimum latency of any link crossing a shard
boundary), then cross-shard packets staged during the window are
exchanged at the barrier.  A packet crossing a boundary at hop-start
``t > V`` arrives no earlier than ``t + L > V + L``, i.e. strictly
beyond the window, so nothing a kernel executed inside the window could
have been affected by a message it had not yet received: the classic
conservative-PDES argument (Chandy/Misra/Bryant), with the barrier
playing the role of null messages.

Determinism across shard *layouts* (the acceptance bar: ``shards=1``
byte-identical to ``shards=N``) needs more than conservative windows —
equal-time events that land in one kernel under one layout may land in
different kernels under another, so FIFO insertion order is not
portable.  Shard kernels therefore execute equal-time events in **key
order**, where an event's key ``(sched_time, origin, seq)`` is derived
from its *logical* cause, not from arrival order:

- ``origin`` names the causal domain: ``(0, j)`` for replicated control
  actions (fault scripts), ``(1, rank)`` for everything a host does,
  ``(2, rank, n)`` for the hop chain of the n-th packet sent by host
  ``rank``.
- events scheduled while an event executes inherit the current origin
  and take the next per-origin ``seq``; packet hop chains use the hop
  index explicitly so both sides of a shard boundary agree.

Host-origin events always execute in the host's home kernel, so
per-origin counters advance identically in every layout; cross-shard
hop arrivals are injected with the exact key the hop would have had if
sender and receiver shared a kernel.  Span ids and packet ids are
minted from the same origins, which is what lets per-shard traces and
metrics merge into byte-identical reports (:mod:`repro.obs.merge`).

Serial barrier-stepping (this module) is the default executor and the
determinism reference; :mod:`repro.sim.shard_mp` runs the same window
protocol across worker processes.
"""

from __future__ import annotations

import heapq
import pickle
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .core import SimulationError, Simulator, _ScheduledCall

__all__ = [
    "CONTROL_ORIGIN",
    "Handoff",
    "ShardKernel",
    "ShardedSimulator",
    "SPAN_STRIDE",
    "deliver_handoff",
    "host_origin",
    "packet_origin",
]

#: ambient origin outside any event (build-time scheduling)
CONTROL_ORIGIN = (0,)
#: span-id stride: ids are ``origin_code * SPAN_STRIDE + per-origin seq``
SPAN_STRIDE = 1 << 40


def host_origin(rank: int) -> tuple:
    """Origin tuple for host ``rank`` (0-based cluster index)."""
    return (1, rank + 1)


def packet_origin(sender_rank: int, seq: int) -> tuple:
    """Origin tuple for the hop chain of one packet."""
    return (2, sender_rank + 1, seq)


def _origin_span_code(origin: tuple) -> int:
    if origin[0] == 0:
        return 0
    if origin[0] == 1:
        return origin[1]
    raise SimulationError(
        f"cannot mint a span id under packet-chain origin {origin}; "
        "spans must be started under a host or control origin (deliveries "
        "re-root to the destination host before dispatching handlers)"
    )


class _KeyedCall(_ScheduledCall):
    """A scheduled call carrying its layout-invariant ordering key."""

    __slots__ = ("key",)


def _call_key(call: _KeyedCall) -> tuple:
    return call.key


class _OriginScope:
    """Context manager installing an origin on a kernel."""

    __slots__ = ("_kernel", "_origin", "_prev")

    def __init__(self, kernel: "ShardKernel", origin: tuple):
        self._kernel = kernel
        self._origin = origin
        self._prev: tuple = CONTROL_ORIGIN

    def __enter__(self) -> tuple:
        self._prev = self._kernel._cur_origin
        self._kernel._cur_origin = self._origin
        return self._origin

    def __exit__(self, *exc) -> None:
        self._kernel._cur_origin = self._prev


@dataclass(frozen=True, slots=True)
class Handoff:
    """One cross-shard message staged for the next barrier.

    The payload is *always* pickled — also under the serial executor —
    so serial and multiprocessing runs have identical value semantics
    (a receiver never shares mutable state with the sender's copy).
    A handoff may carry one message or a whole batched window of them
    (``time`` is then the *earliest* arrival in the batch, which keeps
    the conservative window check equivalent to checking each member:
    the batch violates the bound iff its minimum does).
    """

    dest: int  # destination shard rank
    time: float  # earliest arrival (checked against the window bound)
    blob: bytes  # pickled payload, decoded by the dest shard's handler


def deliver_handoff(kernel: "ShardKernel", h: Handoff) -> None:
    """Decode one handoff at its destination kernel.

    The single decode point shared by the serial barrier loop and the
    multiprocessing workers: blobs travel opaque through whatever
    routing sits in between (the coordinator never unpickles), and the
    payload is decoded only here, in the process that owns the
    destination shard.
    """
    if kernel.on_inject is None:
        raise SimulationError(f"shard {h.dest} has no injection handler")
    kernel.on_inject(pickle.loads(h.blob))


class ShardKernel(Simulator):
    """One shard's event kernel: a :class:`Simulator` with keyed ordering.

    Equal-time events execute in ``(sched_time, origin, seq)`` order
    instead of FIFO, making the schedule a pure function of the event
    keys — identical whichever kernel each event happens to live in.
    The ``_times`` heap stays a heap of bare floats so the fused
    timeout-resume fast path in :class:`Timeout` is untouched; buckets
    become key-sorted lists.
    """

    _EXACT_OBS = True

    #: ambient origin before __init__ completes
    _cur_origin: tuple = CONTROL_ORIGIN

    #: happens-before monitor (:class:`repro.analysis.hb.HbMonitor`).
    #: None by default — a class attribute, so the un-sanitized hot path
    #: pays one attribute load and a None check per schedule and nothing
    #: per executed event (the instrumented run loop is a separate
    #: method, entered only when a monitor is installed).
    _hb = None

    def __init__(self, seed: int = 0, rank: int = 0, shards: int = 1):
        self._cur_origin = CONTROL_ORIGIN
        self._origin_seq: dict[tuple, int] = {}
        self._span_seq: dict[tuple, int] = {}
        self._wait_partials: list[float] = []
        self.rank = rank
        self.shards = shards
        #: cross-shard handoffs staged during the current window
        self.outbox: list[Handoff] = []
        #: window-end flush hooks: transports that *accumulate* crossing
        #: traffic during a window (the batched network path) register a
        #: callable here; the executor invokes :meth:`flush_outbox` at
        #: the barrier, after the window ran and before the outbox is
        #: collected, so a whole window of staged packets becomes one
        #: handoff blob per destination shard.
        self.outbox_flushers: list[Callable[[], None]] = []
        #: injection handler installed by the shard's network layer
        self.on_inject: Optional[Callable[[tuple], None]] = None
        super().__init__(seed)

    def flush_outbox(self) -> None:
        """Run the registered window-end flushers (barrier time)."""
        for flush in self.outbox_flushers:
            flush()

    # -- origins -------------------------------------------------------

    def origin(self, origin: tuple) -> _OriginScope:
        """Scope making ``origin`` the ambient origin (build-time or
        delivery re-rooting)."""
        return _OriginScope(self, origin)

    def mint_span_id(self) -> int:
        """Layout-invariant span id for the current origin (installed as
        the tracer's ``id_fn``)."""
        origin = self._cur_origin
        code = _origin_span_code(origin)
        seq = self._span_seq.get(origin, 0)
        self._span_seq[origin] = seq + 1
        return code * SPAN_STRIDE + seq

    def mint_origin_seq(self, origin: tuple) -> int:
        """Next per-origin sequence number (packet ids use this)."""
        seq = self._origin_seq.get(origin, 0)
        self._origin_seq[origin] = seq + 1
        return seq

    # -- exact kernel metrics ------------------------------------------

    def _observe_wait(self, delay: float) -> None:
        from ..obs.metrics import exact_add

        self._wait_counts[bisect_left(self._wait_bounds, delay)] += 1
        self._wait_n += 1
        exact_add(self._wait_partials, delay)
        if self._wait_min is None or delay < self._wait_min:
            self._wait_min = delay
        if self._wait_max is None or delay > self._wait_max:
            self._wait_max = delay

    def _flush_kernel_metrics(self) -> None:
        self._m_events.value = float(self._n_events)
        self._m_processes.value = float(self._n_processes)
        self._m_wait.set_exact(
            self._wait_n,
            self._wait_counts,
            self._wait_partials,
            self._wait_min,
            self._wait_max,
        )

    # -- keyed scheduling ----------------------------------------------

    def _insert(self, t: float, key: tuple, fn: Callable, args: tuple) -> _KeyedCall:
        hb = self._hb
        if hb is not None:
            # The single choke point every schedule funnels through
            # (_schedule_call, schedule_keyed, and therefore barrier
            # injection) — checking here rather than in the coordinator
            # means a subclass overriding the exchange loop cannot
            # bypass the sanitizer.
            hb.on_insert(self.rank, t, key)
        call = _KeyedCall(self, t, fn, args)
        call.key = key
        buckets = self._buckets
        b = buckets.get(t)
        if b is None:
            buckets[t] = [call]
            heapq.heappush(self._times, t)
        else:
            insort(b, call, key=_call_key)
        self._n_queued += 1
        return call

    def _schedule_call(self, delay: float, fn: Callable, args: tuple) -> _KeyedCall:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        origin = self._cur_origin
        seq = self._origin_seq.get(origin, 0)
        self._origin_seq[origin] = seq + 1
        return self._insert(self._now + delay, (self._now, origin, seq), fn, args)

    def schedule_keyed(
        self,
        time: float,
        origin: tuple,
        seq: int,
        fn: Callable,
        *args: Any,
        sched_time: Optional[float] = None,
    ) -> _KeyedCall:
        """Schedule with an explicit key.

        Used where the key must be identical across shard layouts
        regardless of which kernel runs the scheduling code: replicated
        control scripts (same key in every kernel) and packet hop
        chains (the receiving shard reconstructs the key the sender
        would have used locally via ``sched_time`` = hop start).
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"keyed event at t={time} is in the past (now={self._now})"
            )
        key = (self._now if sched_time is None else sched_time, origin, seq)
        return self._insert(time, key, fn, args)

    # -- queue maintenance (list buckets) ------------------------------

    def _compact(self) -> None:
        buckets = self._buckets
        dead: list[float] = []
        live = 0
        for t, b in buckets.items():
            kept = [c for c in b if not c.cancelled]
            if kept:
                b[:] = kept
                live += len(kept)
            else:
                dead.append(t)
        for t in dead:
            del buckets[t]
        times = self._times
        times[:] = buckets.keys()
        heapq.heapify(times)
        self._n_queued = live
        self._n_cancelled = 0

    def peek(self) -> float:
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            while b and b[0].cancelled:
                b.pop(0)
                self._n_queued -= 1
                self._n_cancelled -= 1
            if b:
                return t
            del buckets[t]
            heapq.heappop(times)
        return float("inf")

    def step(self) -> bool:
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            call = b.pop(0)
            if not b:
                del buckets[t]
                heapq.heappop(times)
            self._n_queued -= 1
            if call.cancelled:
                self._n_cancelled -= 1
                continue
            if t < self._now - 1e-12:
                raise SimulationError("event queue time went backwards")
            if t > self._now:
                self._now = t
            # Control-origin events are executor machinery: replicated
            # scripts run once per *replica*, so counting them would make
            # the merged event total depend on the shard layout.
            if call.key[1][0] != 0:
                self._n_events += 1
            call.cancelled = True
            prev = self._cur_origin
            self._cur_origin = call.key[1]
            try:
                call.fn(*call.args)
            finally:
                self._cur_origin = prev
            return True
        return False

    def _run_sanitized(self, until: Optional[float]) -> float:
        """Instrumented window drive: step() with happens-before hooks.

        Only entered when a monitor is installed, so the fused ``run``
        loop below stays untouched (and cost-free) in normal runs.
        """
        hb = self._hb
        hb.on_run_enter(self.rank, until)
        self._stopped = False
        bound = float("inf") if until is None else until
        try:
            while True:
                t = self.peek()
                if t > bound:
                    break
                hb.on_execute(self.rank, t)
                if not self.step():
                    break
                if self._stopped:
                    break
        finally:
            hb.on_run_exit(self.rank, self._now)
        if not self._stopped and until is not None and self._now < until:
            self._now = until
        return self._now

    def run(self, until: Optional[float] = None) -> float:
        if self._hb is not None:
            return self._run_sanitized(until)
        self._stopped = False
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        bound = float("inf") if until is None else until
        n_events = 0
        now = self._now
        try:
            while times:
                t = times[0]
                if t > bound:
                    break
                b = buckets[t]
                call = b.pop(0)
                if not b:
                    del buckets[t]
                    heappop(times)
                self._n_queued -= 1
                if call.cancelled:
                    self._n_cancelled -= 1
                    continue
                if t < now - 1e-12:
                    raise SimulationError("event queue time went backwards")
                if t > now:
                    now = t
                    self._now = t
                if call.key[1][0] != 0:  # see step(): control events excluded
                    n_events += 1
                call.cancelled = True  # consumed; a late cancel() is a no-op
                self._cur_origin = call.key[1]
                call.fn(*call.args)
                if self._stopped:
                    break
                now = self._now
        finally:
            self._n_events += n_events
            self._cur_origin = CONTROL_ORIGIN
        if not self._stopped and until is not None and self._now < until:
            self._now = until
        return self._now


class ShardedSimulator:
    """Coordinator advancing N shard kernels in lookahead windows.

    Parameters
    ----------
    seed:
        Master seed, shared by every kernel: named RNG streams are
        derived by SHA-256 from (seed, name), so the same stream name
        yields the same sequence in whichever kernel uses it.
    shards:
        Number of kernels.  ``shards=1`` degenerates to a single keyed
        kernel run with no barriers (the determinism reference the
        golden tests compare multi-shard runs against).
    lookahead:
        Window length = the minimum latency of any boundary link, from
        the topology partitioner.  Must be > 0 when ``shards > 1`` —
        zero-latency boundary links are rejected at partition time.
    """

    def __init__(
        self, seed: int = 0, shards: int = 1, lookahead: Optional[float] = None
    ):
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        if shards > 1 and (lookahead is None or lookahead <= 0.0):
            raise SimulationError(
                f"a multi-shard simulation needs positive lookahead, got {lookahead}"
            )
        self.seed = seed
        self.shards = shards
        self.lookahead = lookahead
        self.kernels = [
            ShardKernel(seed, rank=r, shards=shards) for r in range(shards)
        ]
        self._clock = 0.0
        self._script_seq = 0
        self.tracers: list = []
        #: happens-before monitor; installed by REPRO_SANITIZE=1 or
        #: repro.analysis.hb.install_sanitizer (None in normal runs)
        self._hb = None
        from ..analysis.hb import sanitize_enabled

        if sanitize_enabled():
            from ..analysis.hb import install_sanitizer

            install_sanitizer(self)

    @property
    def now(self) -> float:
        """Barrier-synchronized cluster time."""
        return self._clock

    # -- observability --------------------------------------------------

    def install_tracer(self, max_spans: int = 1_000_000) -> list:
        """Attach one tracer per kernel, sharing open-span tables.

        Sharing ``_open``/``_by_id`` lets a protocol close (by id) a
        span that was minted by a peer host living in another shard —
        under the serial executor all kernels are in one process, and
        the close happens at the in-order delivery event, whose time is
        layout-invariant.  The multiprocessing executor refuses tracers.
        """
        if self.tracers:
            return self.tracers
        shared_open: dict = {}
        shared_by_id: dict = {}
        for k in self.kernels:
            t = k.obs.install_tracer(max_spans=max_spans)
            t.id_fn = k.mint_span_id
            t.shard = k.rank
            t._open = shared_open
            t._by_id = shared_by_id
            self.tracers.append(t)
        return self.tracers

    def span_snapshot(self) -> dict:
        """Merged, layout-invariant span snapshot."""
        from ..obs.merge import merge_span_snapshots

        return merge_span_snapshots([t.snapshot() for t in self.tracers])

    def merged_observability(self) -> tuple[dict, dict]:
        """(merged metrics snapshot, merged event counts)."""
        from ..obs.merge import merge_event_counts, merge_metric_snapshots

        return (
            merge_metric_snapshots([k.obs.metrics.snapshot() for k in self.kernels]),
            merge_event_counts([k.obs.bus.topic_counts() for k in self.kernels]),
        )

    # -- control scripting ----------------------------------------------

    def control_each(self, time: float, make_call: Callable) -> int:
        """Schedule one replicated control action in every kernel.

        ``make_call(kernel)`` returns ``(fn, args)`` bound to that
        kernel's replica objects.  Every replica gets the *same* key
        ``(0.0, (0, j), 0)``, so control actions execute at identical
        points in every kernel's schedule regardless of layout; the
        ``sched_time=0.0`` component orders them ahead of any runtime
        event sharing their timestamp.  Returns the script index ``j``.
        """
        seq = self._script_seq
        self._script_seq += 1
        for k in self.kernels:
            fn, args = make_call(k)
            k.schedule_keyed(time, (0, seq), 0, fn, *args, sched_time=0.0)
        return seq

    def control_at(self, time: float, rank: int, fn: Callable, *args: Any) -> int:
        """Schedule one scripted action in the kernel owning its target.

        Unlike :meth:`control_each` this does *not* replicate — it is
        for actions that belong to one shard (e.g. starting a storage
        workload process on a host that shard owns).  The script
        sequence counter is shared with :meth:`control_each`, so keys
        stay globally unique and identical across layouts as long as
        scripts are registered in the same program order.
        """
        seq = self._script_seq
        self._script_seq += 1
        self.kernels[rank].schedule_keyed(time, (0, seq), 0, fn, *args, sched_time=0.0)
        return seq

    # -- execution -------------------------------------------------------

    def total_events(self) -> int:
        """Events executed so far, summed over every kernel.

        Reads the kernels' plain counters (no registry flush), so the
        control plane can poll it between windows at no cost.
        """
        return sum(k._n_events for k in self.kernels)

    def run(self, until: float) -> float:
        """Advance all shards to ``until`` in lookahead windows."""
        if until < self._clock:
            raise SimulationError(
                f"cannot run backwards: until={until} < now={self._clock}"
            )
        hb = self._hb
        if self.shards == 1:
            if hb is not None:
                hb.on_window(self._clock, until)
            k = self.kernels[0]
            k.run(until=until)
            k.flush_outbox()
            if hb is not None:
                hb.on_idle()
            if k.outbox:
                raise SimulationError("cross-shard handoff staged with shards=1")
            self._clock = until
            return until
        v = self._clock
        while v < until:
            v = self._advance_window(until)
        if hb is not None:
            hb.on_idle()
        self._clock = until
        return until

    def _advance_window(self, until: float) -> float:
        """Run one lookahead window ``(clock, w]`` and exchange handoffs.

        Returns the barrier time ``w``; ``self._clock`` is updated, so
        callers may invoke this repeatedly.  Window boundaries are *not*
        part of the deterministic contract: every partition of the same
        horizon executes the identical keyed schedule, because handoffs
        always land strictly beyond their staging window and are
        injected with layout-invariant keys (see the module docstring) —
        which is what lets the control plane pause at arbitrary times.
        """
        v = self._clock
        w = min(v + self.lookahead, until)
        hb = self._hb
        if hb is not None:
            hb.on_window(v, w)
        for k in self.kernels:
            k.run(until=w)
            k.flush_outbox()
        if hb is not None:
            hb.on_barrier(w)
        self._exchange(w)
        self._clock = w
        return w

    def step_window(self, until: float) -> float:
        """Advance exactly one lookahead window (or to ``until`` if
        nearer); the incremental-stepping entry point for the control
        plane.  Returns the new barrier-synchronized clock."""
        if until < self._clock:
            raise SimulationError(
                f"cannot run backwards: until={until} < now={self._clock}"
            )
        if until == self._clock:
            return self._clock
        hb = self._hb
        if self.shards == 1:
            if hb is not None:
                hb.on_window(self._clock, until)
            k = self.kernels[0]
            k.run(until=until)
            k.flush_outbox()
            if k.outbox:
                raise SimulationError("cross-shard handoff staged with shards=1")
            self._clock = until
        else:
            self._advance_window(until)
        if hb is not None:
            hb.on_idle()
        return self._clock

    def run_events(self, n: int, until: float) -> int:
        """Advance until at least ``n`` more events ran (bounded by
        ``until``); the run-to-event-count stepping mode.

        A single kernel steps with event granularity
        (:meth:`Simulator.run_events`); a multi-shard simulation only
        observes event counts at barriers, so it advances whole
        lookahead windows until the count is reached — the finest
        stepping that preserves the conservative protocol.  Returns the
        number of events actually executed.
        """
        start = self.total_events()
        hb = self._hb
        if self.shards == 1:
            k = self.kernels[0]
            if hb is not None:
                hb.on_window(self._clock, until)
            k.run_events(n, until=until)
            k.flush_outbox()
            if k.outbox:
                raise SimulationError("cross-shard handoff staged with shards=1")
            if hb is not None:
                hb.on_idle()
            if k.now > self._clock:
                self._clock = k.now
            return self.total_events() - start
        while self._clock < until and self.total_events() - start < n:
            self._advance_window(until)
        if hb is not None:
            hb.on_idle()
        return self.total_events() - start

    def _exchange(self, window_end: float) -> None:
        staged: list[Handoff] = []
        for k in self.kernels:
            if k.outbox:
                staged.extend(k.outbox)
                k.outbox = []
        for h in staged:
            if h.time <= window_end:
                raise SimulationError(
                    f"conservative window violated: handoff arriving at "
                    f"t={h.time} inside the window ending at {window_end} "
                    "(lookahead exceeds the actual boundary latency)"
                )
            deliver_handoff(self.kernels[h.dest], h)
