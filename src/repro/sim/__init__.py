"""Discrete-event simulation kernel for the RAIN reproduction.

Public surface:

- :class:`Simulator` — event loop, time, process launcher.
- :class:`Process`, :class:`Signal`, :class:`Timeout` — waitables.
- :class:`Interrupt` — exception delivered by ``Process.interrupt``.
- :class:`Mailbox` — blocking FIFO for processes.
- :class:`Tracer`, :class:`StatCounters` — structured observation.
- :class:`RngRegistry` — deterministic named RNG streams.
"""

from .core import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Signal,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
    Waitable,
)
from .queues import Mailbox, QueueClosed
from .rng import RngRegistry, stream_seed
from .shard import (
    CONTROL_ORIGIN,
    Handoff,
    ShardedSimulator,
    ShardKernel,
    host_origin,
    packet_origin,
)
from .trace import StatCounters, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CONTROL_ORIGIN",
    "Handoff",
    "Interrupt",
    "Mailbox",
    "Process",
    "QueueClosed",
    "RngRegistry",
    "ShardKernel",
    "ShardedSimulator",
    "Signal",
    "SimulationError",
    "Simulator",
    "StatCounters",
    "StopSimulation",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "Waitable",
    "host_origin",
    "packet_origin",
    "stream_seed",
]
