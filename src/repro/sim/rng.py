"""Deterministic, named random-number streams.

Every stochastic component of the simulation (link loss, workload
inter-arrivals, fault schedules, ...) draws from its *own* named stream so
that adding a new random component never perturbs existing ones, and so a
whole experiment replays bit-identically from one master seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "stream_seed"]


def stream_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for stream ``name`` from ``master_seed``.

    Uses SHA-256 so the derivation is stable across Python processes
    (``hash()`` is salted per-process and unusable here).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object within one
        registry, and to an identically-seeded stream across registries
        built with the same master seed.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(stream_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(stream_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return f"RngRegistry(master_seed={self.master_seed}, streams={len(self._streams)})"
