"""Blocking FIFO queues for simulation processes.

The mailbox abstraction protocol processes use to receive packets or
application messages: ``put`` never blocks, ``get`` returns a waitable
that fires when an item is available.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .core import Simulator, Waitable

__all__ = ["Mailbox", "QueueClosed"]


class QueueClosed(Exception):
    """Raised to getters when a mailbox is closed and drained."""


class _Get(Waitable):
    pass


class Mailbox:
    """Unbounded FIFO with waitable ``get`` and optional capacity drop.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        When given, ``put`` on a full mailbox drops the item and returns
        False (models a bounded receive buffer).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[_Get] = deque()
        self._closed = False
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def put(self, item: Any) -> bool:
        """Deposit ``item``; wake one waiting getter.

        Returns False (and counts a drop) if the mailbox is bounded and
        full, or has been closed.
        """
        if self._closed:
            self.dropped += 1
            return False
        # Skip getters that already fired or were abandoned (their waiting
        # process was interrupted and detached its callback) — otherwise
        # the item would vanish into a waitable nobody observes.  A live
        # getter always has its process callback attached, because
        # ``yield box.get()`` subscribes synchronously within one event.
        while self._getters and (
            self._getters[0].triggered or not self._getters[0]._callbacks
        ):
            self._getters.popleft()
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        return True

    def get(self) -> Waitable:
        """A waitable that fires with the next item."""
        if self._items:
            g = _Get(self.sim)
            g.succeed(self._items.popleft())
            return g
        if self._closed:
            g = _Get(self.sim)
            g.fail(QueueClosed())
            return g
        g = _Get(self.sim)
        self._getters.append(g)
        return g

    def get_nowait(self) -> Any:
        """Pop an item immediately; raises ``IndexError`` when empty."""
        return self._items.popleft()

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (no removal)."""
        return list(self._items)

    def close(self) -> None:
        """Reject future puts; fail all pending getters with QueueClosed."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            g = self._getters.popleft()
            if not g.triggered:
                g.fail(QueueClosed())

    def clear(self) -> int:
        """Discard all queued items; returns how many were dropped."""
        n = len(self._items)
        self._items.clear()
        return n
