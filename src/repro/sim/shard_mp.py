"""Multiprocessing executor for sharded simulations.

Runs the same conservative window protocol as
:meth:`repro.sim.shard.ShardedSimulator.run`, but with shard kernels
living in worker processes and three executor-level optimizations the
serial reference does not need:

**Fused steps.**  One pipe round-trip per window: the coordinator sends
``("step", window_end, handoffs)``, the worker injects the routed
handoffs, runs its kernels to the window end, flushes the batched
outboxes, and replies ``("out", staged, promise)``.  The historical
protocol used two synchronous round-trips (``run``/``outbox`` then
``inject``/``ack``), which doubled the per-window latency floor.

**Promise/grant window elevation.**  Each worker's reply carries a
*promise*: the earliest simulation time at which any kernel it owns
could emit a cross-shard arrival, ``min(peek over owned kernels) +
lookahead``.  An event executing at time ``t`` stages arrivals strictly
after ``t + lookahead`` (the serialization delay of a crossing hop is
strictly positive and its latency is at least the lookahead), so the
coordinator may grant a window end of ``min(until, min(promises),
min(pending handoff arrivals) + lookahead)`` without violating
conservative causality — when no traffic is about to cross, whole
stretches of lock-step windows collapse into a single grant.  This is
the classic lookahead/null-message elevation of Chandy–Misra–Bryant,
with promises playing the null messages.

**Persistent workers.**  The spawned pool (one pipe + process per
worker) is kept alive in a module-level registry keyed by worker
count, so bench repeats and repeated CLI runs in one process reuse the
warm interpreters instead of paying the ``spawn`` import cost per run;
each run re-sends its ``build`` op.  Pools are discarded (quit sent,
pipes closed, processes joined) whenever a run errors, and
:func:`shutdown_pools` reaps everything explicitly.

Routing stays blobs-only: the coordinator moves opaque
:class:`~repro.sim.shard.Handoff` objects between pipes and never
unpickles a payload — decoding happens in the destination worker via
:func:`~repro.sim.shard.deliver_handoff`.  This module deliberately
does not import ``pickle``, and a unit test pins that.

Because every cross-shard payload is pickled even under the serial
executor, and every injected event carries an explicit layout-invariant
key, the worker scheduling adds no nondeterminism: ``workers=N``
produces the same merged report as ``workers=1``, which the golden
tests assert.

Tracing is refused here: serial sharded tracers share open-span tables
across kernels, which has no cross-process equivalent.  Run with
``workers=1`` when you need span exports.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing as mp
from typing import Any, Optional

from .shard import Handoff, SimulationError, deliver_handoff

__all__ = [
    "run_sharded_mp",
    "run_cluster_mp",
    "register_builder",
    "shutdown_pools",
    "MergedRun",
]

#: builder registry: name -> (module, attribute).  Resolved by import in
#: each worker, so entries must be importable module-level callables
#: accepting ``(shards=..., **spec)`` and returning an object exposing
#: ``.sharded`` (a ShardedSimulator) or a ShardedSimulator itself.
_BUILDERS: dict[str, tuple[str, str]] = {
    "churn": ("repro.scenarios", "build_churn_cluster"),
}


def register_builder(name: str, module: str, attribute: str) -> None:
    """Register a scenario builder for worker processes to import.

    Registration lives in the parent process only; ``spawn`` workers
    re-import this module fresh, so builders registered at runtime are
    reachable there via the ``"module:attribute"`` direct form instead.
    """
    _BUILDERS[name] = (module, attribute)


def _resolve(builder: str):
    entry = _BUILDERS.get(builder)
    if entry is None:
        if ":" in builder:
            entry = tuple(builder.split(":", 1))
        else:
            raise SimulationError(f"unknown shard-mp builder {builder!r}")
    module, attribute = entry
    try:
        return getattr(importlib.import_module(module), attribute)
    except (ImportError, AttributeError) as exc:
        raise SimulationError(
            f"unknown shard-mp builder {builder!r}: {exc}"
        ) from None


def _worker_main(conn) -> None:
    """Generic persistent worker: builds on demand, steps until quit.

    Every op replies exactly once.  Failures reply ``("error", msg)``
    and *keep the loop alive* — the pool stays drainable and reusable;
    it is the coordinator's choice to discard it after an error.
    """
    kernels: dict[int, Any] = {}
    ranks: list[int] = []
    lookahead = 0.0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        op = msg[0]
        if op == "build":
            _, builder, spec, ranks, shards = msg
            try:
                built = _resolve(builder)(shards=shards, **spec)
                sharded = getattr(built, "sharded", built)
                # Workers drive kernels directly, never the coordinator's
                # window loop, so an inherited REPRO_SANITIZE monitor
                # would sit in "build" phase forever while slowing the
                # run — disable it (the sanitize CLI is serial-only).
                sharded._hb = None
                for k in sharded.kernels:
                    k._hb = None
                kernels = {r: sharded.kernels[r] for r in ranks}
                for r in ranks:
                    if kernels[r].obs.tracer is not None:
                        raise SimulationError(
                            "tracers are not supported under workers > 1"
                        )
                lookahead = sharded.lookahead or 0.0
            except Exception as exc:  # noqa: BLE001 — forwarded verbatim
                conn.send(("error", str(exc) or repr(exc)))
                continue
            conn.send(("ready", sharded.lookahead, _promise(kernels, lookahead)))
        elif op == "step":
            _, w_end, handoffs = msg
            try:
                staged: list[Handoff] = []
                for h in handoffs:
                    deliver_handoff(kernels[h.dest], h)
                for r in ranks:
                    k = kernels[r]
                    k.run(until=w_end)
                    k.flush_outbox()
                    if k.outbox:
                        staged.extend(k.outbox)
                        k.outbox = []
            except Exception as exc:  # noqa: BLE001 — forwarded verbatim
                conn.send(("error", str(exc) or repr(exc)))
                continue
            conn.send(("out", staged, _promise(kernels, lookahead)))
        elif op == "snapshot":
            try:
                snaps = [
                    (
                        kernels[r].obs.metrics.snapshot(),
                        kernels[r].obs.bus.topic_counts(),
                    )
                    for r in ranks
                ]
            except Exception as exc:  # noqa: BLE001 — forwarded verbatim
                conn.send(("error", str(exc) or repr(exc)))
                continue
            conn.send(("snap", snaps))
        elif op == "quit":
            conn.close()
            return


def _promise(kernels: dict, lookahead: float) -> float:
    """Earliest time any owned kernel could next emit a crossing arrival."""
    if not kernels:
        return float("inf")
    return min(k.peek() for k in kernels.values()) + lookahead


class _WorkerPool:
    """A persistent set of generic spawn workers joined by pipes."""

    def __init__(self, n_workers: int):
        ctx = mp.get_context("spawn")
        self.n_workers = n_workers
        self.conns = []
        self.procs = []
        for _ in range(n_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def pids(self) -> list:
        return [proc.pid for proc in self.procs]

    def broadcast(self, msgs: list) -> list:
        """Send one message per worker, then collect one reply per worker.

        All replies are drained before any error is raised, so the
        pipes are empty and the pool stays protocol-synchronized even
        when a worker reports a failure.
        """
        for conn, msg in zip(self.conns, msgs):
            conn.send(msg)
        replies, errors = [], []
        for conn in self.conns:
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                reply = ("error", "worker process died")
            replies.append(reply)
            if reply[0] == "error":
                errors.append(reply[1])
        if errors:
            raise SimulationError(errors[0])
        return replies

    def shutdown(self, timeout: float = 2.0) -> None:
        for conn in self.conns:
            try:
                conn.send(("quit",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self.conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self.procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()
                proc.join(timeout=timeout)
        self.conns, self.procs = [], []


#: live pools keyed by worker count, reused across runs in this process
_POOLS: dict[int, _WorkerPool] = {}


def _get_pool(n_workers: int) -> _WorkerPool:
    pool = _POOLS.get(n_workers)
    if pool is not None and all(proc.is_alive() for proc in pool.procs):
        return pool
    if pool is not None:
        pool.shutdown()
    pool = _POOLS[n_workers] = _WorkerPool(n_workers)
    return pool


def _discard_pool(pool: _WorkerPool) -> None:
    _POOLS.pop(pool.n_workers, None)
    pool.shutdown()


def shutdown_pools() -> None:
    """Quit and join every persistent worker pool (idempotent)."""
    for pool in list(_POOLS.values()):
        _discard_pool(pool)


atexit.register(shutdown_pools)


def run_sharded_mp(
    builder: str,
    spec: dict,
    shards: int,
    until: float,
    workers: Optional[int] = None,
) -> tuple[list[dict], list[dict]]:
    """Run a sharded scenario across worker processes.

    Returns ``(metric snapshots, event counts)`` — one entry per shard,
    ready for :func:`repro.obs.merge.merge_metric_snapshots` /
    :func:`merge_event_counts`.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    n_workers = min(workers or shards, shards)
    if n_workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    # contiguous rank ranges per worker, like switch arcs per shard
    rank_sets = [
        list(range(w * shards // n_workers, (w + 1) * shards // n_workers))
        for w in range(n_workers)
    ]
    owner = {r: w for w, ranks in enumerate(rank_sets) for r in ranks}
    pool = _get_pool(n_workers)
    try:
        replies = pool.broadcast(
            [("build", builder, spec, ranks, shards) for ranks in rank_sets]
        )
        lookahead = replies[0][1]
        promises = [reply[2] for reply in replies]
        if shards > 1 and (lookahead is None or lookahead <= 0.0):
            raise SimulationError(
                f"multi-shard run needs positive lookahead, got {lookahead}"
            )
        la = lookahead or 0.0
        v = 0.0
        inbox: list[list[Handoff]] = [[] for _ in range(n_workers)]
        pending_min = float("inf")
        while v < until:
            if shards == 1:
                w_end = until
            else:
                # Grant: nothing can arrive at or before the earliest
                # worker promise, nor before the earliest undelivered
                # handoff has been injected and had one lookahead to
                # propagate — so the whole span up to that point is one
                # window.  Always at least the lock-step window v + la.
                w_end = min(until, max(v + la, min(min(promises), pending_min + la)))
            replies = pool.broadcast(
                [("step", w_end, group) for group in inbox]
            )
            inbox = [[] for _ in range(n_workers)]
            pending_min = float("inf")
            promises = []
            for reply in replies:
                _, staged, promise = reply
                promises.append(promise)
                for h in staged:
                    if h.time <= w_end:
                        raise SimulationError(
                            f"conservative window violated: handoff at "
                            f"t={h.time} inside the window ending at {w_end}"
                        )
                    inbox[owner[h.dest]].append(h)
                    if h.time < pending_min:
                        pending_min = h.time
            v = w_end
        metric_snaps: list[dict] = []
        event_counts: list[dict] = []
        for reply in pool.broadcast([("snapshot",)] * n_workers):
            for metrics, events in reply[1]:
                metric_snaps.append(metrics)
                event_counts.append(events)
        return metric_snaps, event_counts
    except BaseException:
        # Failed runs must not leave workers blocked in recv() or
        # half-way through a protocol exchange: quit + close + join
        # immediately and drop the pool from the registry.
        _discard_pool(pool)
        raise


class MergedRun:
    """Report facade over a completed multiprocessing run."""

    def __init__(self, sim_time: float, metrics: dict, events: dict):
        self.sim_time = sim_time
        self._metrics = metrics
        self._events = events

    def metrics(self, scenario: str = "", **extra: Any):
        from ..obs import ClusterReport

        return ClusterReport(
            scenario=scenario,
            sim_time=self.sim_time,
            metrics=self._metrics,
            events=self._events,
            extra=dict(extra),
        )


def run_cluster_mp(
    builder: str,
    spec: dict,
    shards: int,
    until: float,
    workers: Optional[int] = None,
) -> MergedRun:
    """Run a registered cluster scenario under workers and merge."""
    from ..obs.merge import merge_event_counts, merge_metric_snapshots

    metric_snaps, event_counts = run_sharded_mp(
        builder, spec, shards, until, workers=workers
    )
    return MergedRun(
        sim_time=until,
        metrics=merge_metric_snapshots(metric_snaps),
        events=merge_event_counts(event_counts),
    )
