"""Multiprocessing executor for sharded simulations.

Runs the same conservative window protocol as
:meth:`repro.sim.shard.ShardedSimulator.run`, but with shard kernels
living in worker processes: each worker builds the *whole* scenario
from a picklable spec (via a registered builder, so the ``spawn`` start
method can re-import it), then advances only the ranks it owns.  The
coordinator mirrors the barrier loop over pipes — run-to-window,
collect outboxes, validate against the window bound, route handoffs to
the owning worker — and merges the final per-shard snapshots exactly
like the serial executor does.

Because every cross-shard payload is pickled even under the serial
executor, and every injected event carries an explicit layout-invariant
key, the worker scheduling adds no nondeterminism: ``workers=N``
produces the same merged report as ``workers=1``, which the golden
tests assert.

Tracing is refused here: serial sharded tracers share open-span tables
across kernels, which has no cross-process equivalent.  Run with
``workers=1`` when you need span exports.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import pickle
from typing import Any, Optional

from .shard import Handoff, SimulationError

__all__ = ["run_sharded_mp", "run_cluster_mp", "register_builder", "MergedRun"]

#: builder registry: name -> (module, attribute).  Resolved by import in
#: each worker, so entries must be importable module-level callables
#: accepting ``(shards=..., **spec)`` and returning an object exposing
#: ``.sharded`` (a ShardedSimulator) or a ShardedSimulator itself.
_BUILDERS: dict[str, tuple[str, str]] = {
    "churn": ("repro.scenarios", "build_churn_cluster"),
}


def register_builder(name: str, module: str, attribute: str) -> None:
    """Register a scenario builder for worker processes to import."""
    _BUILDERS[name] = (module, attribute)


def _resolve(builder: str):
    try:
        module, attribute = _BUILDERS[builder]
    except KeyError:
        raise SimulationError(f"unknown shard-mp builder {builder!r}") from None
    return getattr(importlib.import_module(module), attribute)


def _worker_main(conn, builder: str, spec: dict, ranks: list, shards: int) -> None:
    built = _resolve(builder)(shards=shards, **spec)
    sharded = getattr(built, "sharded", built)
    # Workers inherit REPRO_SANITIZE but drive kernels directly, never
    # the coordinator's window loop, so a monitor would sit in "build"
    # phase forever while slowing the run — disable it explicitly (the
    # sanitize CLI uses the serial executor).
    sharded._hb = None
    for k in sharded.kernels:
        k._hb = None
    kernels = {r: sharded.kernels[r] for r in ranks}
    for r in ranks:
        if kernels[r].obs.tracer is not None:
            conn.send(("error", "tracers are not supported under workers > 1"))
            return
    conn.send(("ready", sharded.lookahead))
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "run":
            until = msg[1]
            staged: list[Handoff] = []
            for r in ranks:
                kernels[r].run(until=until)
                if kernels[r].outbox:
                    staged.extend(kernels[r].outbox)
                    kernels[r].outbox = []
            conn.send(("outbox", staged))
        elif op == "inject":
            for h in msg[1]:
                kernel = kernels[h.dest]
                if kernel.on_inject is None:
                    conn.send(("error", f"shard {h.dest} has no injection handler"))
                    return
                kernel.on_inject(pickle.loads(h.blob))
            conn.send(("ok",))
        elif op == "snapshot":
            snaps = [
                (kernels[r].obs.metrics.snapshot(), kernels[r].obs.bus.topic_counts())
                for r in ranks
            ]
            conn.send(("snap", snaps))
        elif op == "quit":
            conn.close()
            return


def run_sharded_mp(
    builder: str,
    spec: dict,
    shards: int,
    until: float,
    workers: Optional[int] = None,
) -> tuple[list[dict], list[dict]]:
    """Run a sharded scenario across worker processes.

    Returns ``(metric snapshots, event counts)`` — one entry per shard,
    ready for :func:`repro.obs.merge.merge_metric_snapshots` /
    :func:`merge_event_counts`.
    """
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    n_workers = min(workers or shards, shards)
    if n_workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    # contiguous rank ranges per worker, like switch arcs per shard
    rank_sets = [
        list(range(w * shards // n_workers, (w + 1) * shards // n_workers))
        for w in range(n_workers)
    ]
    owner = {r: w for w, ranks in enumerate(rank_sets) for r in ranks}
    ctx = mp.get_context("spawn")
    conns, procs = [], []
    try:
        for w, ranks in enumerate(rank_sets):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, builder, spec, ranks, shards),
                daemon=True,
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        lookahead = None
        for conn in conns:
            kind, value = conn.recv()
            if kind == "error":
                raise SimulationError(value)
            lookahead = value
        if shards > 1 and (lookahead is None or lookahead <= 0.0):
            raise SimulationError(
                f"multi-shard run needs positive lookahead, got {lookahead}"
            )
        v = 0.0
        while v < until:
            w_end = until if shards == 1 else min(v + lookahead, until)
            for conn in conns:
                conn.send(("run", w_end))
            staged: list[Handoff] = []
            for conn in conns:
                kind, out = conn.recv()
                if kind == "error":
                    raise SimulationError(out)
                staged.extend(out)
            routed: list[list[Handoff]] = [[] for _ in conns]
            for h in staged:
                if h.time <= w_end:
                    raise SimulationError(
                        f"conservative window violated: handoff at t={h.time} "
                        f"inside the window ending at {w_end}"
                    )
                routed[owner[h.dest]].append(h)
            for conn, group in zip(conns, routed):
                conn.send(("inject", group))
            for conn in conns:
                ack = conn.recv()
                if ack[0] == "error":
                    raise SimulationError(ack[1])
            v = w_end
        metric_snaps: list[dict] = []
        event_counts: list[dict] = []
        for conn in conns:
            conn.send(("snapshot",))
            kind, snaps = conn.recv()
            if kind == "error":
                raise SimulationError(snaps)
            for metrics, events in snaps:
                metric_snaps.append(metrics)
                event_counts.append(events)
        for conn in conns:
            conn.send(("quit",))
        return metric_snaps, event_counts
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()


class MergedRun:
    """Report facade over a completed multiprocessing run."""

    def __init__(self, sim_time: float, metrics: dict, events: dict):
        self.sim_time = sim_time
        self._metrics = metrics
        self._events = events

    def metrics(self, scenario: str = "", **extra: Any):
        from ..obs import ClusterReport

        return ClusterReport(
            scenario=scenario,
            sim_time=self.sim_time,
            metrics=self._metrics,
            events=self._events,
            extra=dict(extra),
        )


def run_cluster_mp(
    builder: str,
    spec: dict,
    shards: int,
    until: float,
    workers: Optional[int] = None,
) -> MergedRun:
    """Run a registered cluster scenario under workers and merge."""
    from ..obs.merge import merge_event_counts, merge_metric_snapshots

    metric_snaps, event_counts = run_sharded_mp(
        builder, spec, shards, until, workers=workers
    )
    return MergedRun(
        sim_time=until,
        metrics=merge_metric_snapshots(metric_snaps),
        events=merge_event_counts(event_counts),
    )
