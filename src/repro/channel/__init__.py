"""Consistent-history link protocol and reliable messaging (Sec. 2.2).

- :class:`ConsistentHistoryMachine` — the Figs. 7/8 state machine
  (slack 2 and general N), pure logic.
- :class:`LinkMonitorService` / :class:`PathMonitor` — ping-driven
  per-path monitoring over the simulated network, publishing consistent
  Up/Down histories at both ends.
- :class:`ReliableEndpoint` — sliding-window reliable messaging, the
  substrate the membership token and RUDP ride on.
"""

from .events import ChannelView, Transition, Trigger
from .monitor import (
    MONITOR_PORT,
    HelloMsg,
    LinkMonitorService,
    MonitorConfig,
    PathMonitor,
)
from .sliding_window import ReliableEndpoint, Segment, WindowFull
from .state_machine import ConsistentHistoryMachine, StepResult

__all__ = [
    "MONITOR_PORT",
    "ChannelView",
    "ConsistentHistoryMachine",
    "HelloMsg",
    "LinkMonitorService",
    "MonitorConfig",
    "PathMonitor",
    "ReliableEndpoint",
    "Segment",
    "StepResult",
    "Transition",
    "Trigger",
    "WindowFull",
]
