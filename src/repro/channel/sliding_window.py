"""Sliding-window reliable messaging over unreliable datagrams.

The paper's protocols assume a "reliable packet communication layer"
(token transmission in the membership protocol, RUDP for MPI); this
module provides it: cumulative-ACK sliding window with retransmission,
in-order delivery, and duplicate suppression.  Transport-agnostic — the
owner supplies ``transmit(segment)`` (RUDP plugs in multi-path sending)
and receives in-order messages via ``deliver(msg)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import Simulator

__all__ = ["Segment", "ReliableEndpoint", "WindowFull"]

_conn_ids = itertools.count(1)


class WindowFull(Exception):
    """Raised when the send buffer exceeds its cap."""


@dataclass
class Segment:
    """One wire unit of the reliable channel.

    ``seq`` numbers data segments from 1; ``ack`` is cumulative (highest
    in-order sequence received).  Pure ACK segments carry ``payload is
    None`` and ``seq == 0``.
    """

    seq: int
    ack: int
    payload: Any = None
    size_bytes: int = 0
    #: Causal trace context of the carried message (None for pure ACKs
    #: and untraced traffic); retransmissions reuse the original context.
    ctx: Any = None

    @property
    def is_data(self) -> bool:
        """Whether this segment carries payload (vs a pure ACK)."""
        return self.seq > 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"DATA#{self.seq}" if self.is_data else "ACK"
        return f"{kind}(ack={self.ack})"


class ReliableEndpoint:
    """One side of a bidirectional reliable channel.

    Parameters
    ----------
    sim:
        Simulation kernel (for retransmission timers).
    transmit:
        Callback taking a :class:`Segment` and sending it unreliably to
        the peer (may drop, duplicate modestly, or delay).
    deliver:
        Callback receiving application messages exactly once, in order.
    window:
        Maximum in-flight (unacknowledged) data segments.
    rto:
        Retransmission timeout in seconds.
    max_buffer:
        Cap on queued-but-unsent messages (raises :class:`WindowFull`).
    ack_delay:
        Small delay before sending a standalone ACK, letting one ACK
        cover a burst (0 = immediate).
    on_retransmit:
        Optional callback invoked on every retransmission — the owning
        transport's hook into the observability layer.
    """

    def __init__(
        self,
        sim: Simulator,
        transmit: Callable[[Segment], None],
        deliver: Callable[[Any], None],
        window: int = 32,
        rto: float = 0.2,
        max_buffer: int = 10_000,
        ack_delay: float = 0.0,
        on_retransmit: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.transmit = transmit
        self.deliver = deliver
        self.window = window
        self.rto = rto
        self.max_buffer = max_buffer
        self.ack_delay = ack_delay
        self.on_retransmit = on_retransmit
        # sender state
        self.next_seq = 1
        self.send_base = 1  # lowest unacknowledged seq
        self._unsent: list[tuple[Any, int, Any]] = []  # (msg, size, ctx)
        self._inflight: dict[int, tuple[Any, int, Any]] = {}
        self._timer = None
        self._backoff = 1  # current RTO multiplier (exponential, capped)
        self._max_backoff = 4
        # receiver state
        self.recv_cum = 0  # highest in-order seq delivered
        self._ooo: dict[int, tuple[Any, int, Any]] = {}  # out-of-order buffer
        self._ack_pending = False
        # stats
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.segments_sent = 0

    # -- sending ---------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Unacknowledged data segments."""
        return len(self._inflight)

    @property
    def backlog(self) -> int:
        """Messages accepted but not yet transmitted."""
        return len(self._unsent)

    def send(self, msg: Any, size_bytes: int = 0, ctx: Any = None) -> None:
        """Queue ``msg`` for reliable, in-order delivery to the peer.

        ``ctx`` optionally tags the message with a causal
        :class:`~repro.obs.SpanContext`, carried on every (re)transmitted
        segment and re-activated around the peer's ``deliver``.
        """
        if len(self._unsent) >= self.max_buffer:
            raise WindowFull(f"send buffer exceeds {self.max_buffer}")
        self._unsent.append((msg, size_bytes, ctx))
        self._pump()

    def _pump(self) -> None:
        while self._unsent and len(self._inflight) < self.window:
            msg, size, ctx = self._unsent.pop(0)
            seq = self.next_seq
            self.next_seq += 1
            self._inflight[seq] = (msg, size, ctx)
            self._emit(seq, msg, size, ctx)
        self._arm_timer()

    def _emit(self, seq: int, msg: Any, size: int, ctx: Any) -> None:
        self.segments_sent += 1
        self.transmit(
            Segment(seq=seq, ack=self.recv_cum, payload=msg, size_bytes=size, ctx=ctx)
        )

    def _arm_timer(self) -> None:
        if self._inflight and self._timer is None:
            self._timer = self.sim.call_in(self.rto * self._backoff, self._on_rto)

    def _on_rto(self) -> None:
        self._timer = None
        if not self._inflight:
            return
        # TCP-style: retransmit only the lowest unacknowledged segment
        # (the receiver buffers out-of-order data, so the cumulative ACK
        # jumps past anything it already holds), and back the timer off
        # exponentially so a long outage is not a retransmission storm.
        self._backoff = min(self._backoff * 2, self._max_backoff)
        seq = min(self._inflight)
        msg, size, ctx = self._inflight[seq]
        self.retransmissions += 1
        if self.on_retransmit is not None:
            self.on_retransmit()
        if ctx is not None:
            tracer = self.sim.obs.tracer
            if tracer is not None:
                tracer.instant(
                    "channel.retransmit", parent=ctx, seq=seq, backoff=self._backoff
                )
        self._emit(seq, msg, size, ctx)
        self._arm_timer()

    # -- receiving -------------------------------------------------------

    def on_segment(self, seg: Segment) -> None:
        """Feed a segment that arrived from the peer."""
        # Process the cumulative ACK half.
        if seg.ack >= self.send_base:
            for seq in range(self.send_base, seg.ack + 1):
                self._inflight.pop(seq, None)
            self.send_base = seg.ack + 1
            self._backoff = 1  # progress: reset the retransmission backoff
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._pump()
        # Process the data half.
        if not seg.is_data:
            return
        if seg.seq <= self.recv_cum or seg.seq in self._ooo:
            self.duplicates_dropped += 1
            self._schedule_ack()  # re-ack so the sender stops resending
            return
        self._ooo[seg.seq] = (seg.payload, seg.size_bytes, seg.ctx)
        while self.recv_cum + 1 in self._ooo:
            self.recv_cum += 1
            payload, _, ctx = self._ooo.pop(self.recv_cum)
            if ctx is not None:
                tracer = self.sim.obs.tracer
                if tracer is not None:
                    with tracer.activate(ctx):
                        self.deliver(payload)
                    continue
            self.deliver(payload)
        self._schedule_ack()

    def _schedule_ack(self) -> None:
        if self._ack_pending:
            return
        self._ack_pending = True
        self.sim.call_in(self.ack_delay, self._send_ack)

    def _send_ack(self) -> None:
        self._ack_pending = False
        self.segments_sent += 1
        self.transmit(Segment(seq=0, ack=self.recv_cum, size_bytes=0))

    # -- introspection ----------------------------------------------------

    @property
    def all_acked(self) -> bool:
        """True when every accepted message has been acknowledged."""
        return not self._inflight and not self._unsent
