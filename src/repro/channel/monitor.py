"""Ping-based link monitoring with consistent history (paper Sec. 2.2).

Each host runs a :class:`LinkMonitorService`; for every physical path it
cares about — a (local NIC, remote NIC) pair, since RAIN nodes have
bundled interfaces — it creates a :class:`PathMonitor`.  The monitor
sends small hello packets on that exact path at a fixed interval.  Each
hello carries the sender's *cumulative token count*; because the count
is cumulative and hellos repeat, token delivery is reliable and in-order
without a separate reliability layer — exactly the paper's "map reliable
messaging on top of the ping messages with only a sequence number and
acknowledge number as data".

Triggers are generated per the paper's requirements:

- **tout** when nothing has been heard from the peer for
  ``timeout`` seconds (bidirectional communication probably lost) —
  re-raised every ping interval while the silence persists, so a flip
  blocked by the slack bound is retried;
- **token** when the peer's cumulative count increases;
- **tin** implicitly via token receipt (``token_implies_tin``), since a
  token that arrives proves the path works.

Both endpoints of a path therefore publish identical Up/Down transition
histories, within the configured slack — the property Fig. 6(b)
illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net import Endpoint, Host, Packet
from ..sim import Simulator
from .events import ChannelView, Transition
from .state_machine import ConsistentHistoryMachine

__all__ = ["MonitorConfig", "HelloMsg", "PathMonitor", "LinkMonitorService", "MONITOR_PORT"]

#: Well-known port for link monitor traffic.
MONITOR_PORT = 5001


@dataclass(frozen=True)
class MonitorConfig:
    """Tunable timing and slack for path monitoring."""

    ping_interval: float = 0.1  # seconds between hellos
    timeout: float = 0.5  # silence before a tout fires
    slack: int = 2  # bounded-slack N of the protocol
    token_implies_tin: bool = True
    hello_bytes: int = 16  # wire size of a hello
    #: False disables the token protocol: each endpoint flips on its own
    #: local evidence only.  This is the Fig. 6(a) baseline — endpoints'
    #: histories may diverge without bound.
    consistent: bool = True


@dataclass(slots=True)
class HelloMsg:
    """One hello packet: path identity plus the cumulative token count."""

    src_if: int
    dst_if: int
    tokens_cum: int
    seq: int


class PathMonitor:
    """Monitors one (local NIC, remote NIC) path to one peer."""

    def __init__(
        self,
        service: "LinkMonitorService",
        peer: str,
        local_if: int,
        remote_if: int,
    ):
        self.service = service
        self.sim: Simulator = service.sim
        self.peer = peer
        self.local_if = local_if
        self.remote_if = remote_if
        cfg = service.config
        self.config = cfg
        self.machine = ConsistentHistoryMachine(
            slack=cfg.slack,
            token_implies_tin=cfg.token_implies_tin,
            name=f"{service.host.name}.nic{local_if}->{peer}.nic{remote_if}",
        )
        self.tokens_received_cum = 0
        self.last_heard: Optional[float] = None
        self._seq = 0
        self._peer_endpoint = Endpoint(peer, service.port)
        self._listeners: list[Callable[["PathMonitor", Transition], None]] = []
        self.started_at = self.sim.now
        self._m_transitions = self.sim.obs.metrics.counter(
            "channel.monitor.transitions", help="observable Up/Down flips"
        )
        # view name -> bound series; series appear on first flip (so
        # snapshots only list views that happened) but the label lookup
        # runs once per view, not once per transition.
        self._m_by_view: dict[str, object] = {}
        self._proc = self.sim.process(self._run(), name=f"monitor:{self.machine.name}")

    # -- public state ----------------------------------------------------

    @property
    def view(self) -> ChannelView:
        """Current observable channel state."""
        return self.machine.view

    @property
    def is_up(self) -> bool:
        """Convenience: view == UP."""
        return self.machine.view is ChannelView.UP

    @property
    def history(self) -> list[Transition]:
        """This endpoint's full transition history."""
        return self.machine.history

    def subscribe(self, fn: Callable[["PathMonitor", Transition], None]) -> None:
        """Call ``fn(monitor, transition)`` on every observable flip."""
        self._listeners.append(fn)

    # -- internals ----------------------------------------------------------

    def _notify(self, transition: Optional[Transition]) -> None:
        if transition is None:
            return
        view = transition.view.name.lower()
        series = self._m_by_view.get(view)
        if series is None:
            series = self._m_transitions.labels(view=view)
            self._m_by_view[view] = series
        series.inc()
        self.sim.obs.bus.publish(
            "channel.monitor.transition",
            path=self.machine.name,
            view=view,
            index=transition.index,
        )
        for fn in self._listeners:
            fn(self, transition)

    def _run(self):
        from ..sim import Interrupt

        cfg = self.config
        try:
            while True:
                self._send_hello()
                # Silence check: tout while the peer has been quiet too long.
                quiet_since = (
                    self.last_heard if self.last_heard is not None else self.started_at
                )
                if self.sim.now - quiet_since > cfg.timeout:
                    if cfg.consistent:
                        result = self.machine.on_timeout(self.sim.now)
                        self._notify(result.transition)
                    else:
                        self._naive_flip(ChannelView.DOWN)
                yield self.sim.timeout(cfg.ping_interval)
        except Interrupt:
            return

    def _send_hello(self) -> None:
        self._seq += 1
        msg = HelloMsg(
            src_if=self.local_if,
            dst_if=self.remote_if,
            tokens_cum=self.machine.tokens_sent_total,
            seq=self._seq,
        )
        self.service.host.send(
            self._peer_endpoint,
            payload=msg,
            size_bytes=self.config.hello_bytes,
            src_port=self.service.port,
            src_nic=self.local_if,
            dst_nic=self.remote_if,
        )

    def _naive_flip(self, to_view: ChannelView) -> None:
        """Fig. 6(a) baseline: flip on local evidence, no token gating."""
        if self.machine.view is to_view:
            return
        self.machine.view = to_view
        tr = Transition(
            index=len(self.machine.history),
            view=to_view,
            trigger=None,  # type: ignore[arg-type] - no protocol trigger
            time=self.sim.now,
        )
        self.machine.history.append(tr)
        self._notify(tr)

    def _on_hello(self, msg: HelloMsg) -> None:
        self.last_heard = self.sim.now
        if not self.config.consistent:
            self._naive_flip(ChannelView.UP)
            return
        while self.tokens_received_cum < msg.tokens_cum:
            self.tokens_received_cum += 1
            result = self.machine.on_token(self.sim.now)
            self._notify(result.transition)

    def stop(self) -> None:
        """Stop pinging (e.g. when the peer is decommissioned)."""
        if self._proc.is_alive:
            self._proc.interrupt("stopped")


class LinkMonitorService:
    """Per-host endpoint demultiplexing hello traffic to path monitors."""

    def __init__(
        self,
        host: Host,
        config: Optional[MonitorConfig] = None,
        port: int = MONITOR_PORT,
    ):
        self.host = host
        self.sim = host.sim
        self.config = config if config is not None else MonitorConfig()
        self.port = port
        self.paths: dict[tuple[str, int, int], PathMonitor] = {}
        host.bind(port, self._on_packet)

    def watch(self, peer: str, local_if: int = 0, remote_if: int = 0) -> PathMonitor:
        """Start (or return) the monitor for one path to ``peer``.

        The peer host must call ``watch`` with mirrored interface indices
        for the protocol to run on both ends.
        """
        key = (peer, local_if, remote_if)
        mon = self.paths.get(key)
        if mon is None:
            mon = PathMonitor(self, peer, local_if, remote_if)
            self.paths[key] = mon
        return mon

    def path(self, peer: str, local_if: int = 0, remote_if: int = 0) -> Optional[PathMonitor]:
        """The monitor for a path, if one was started."""
        return self.paths.get((peer, local_if, remote_if))

    def up_paths(self, peer: str) -> list[PathMonitor]:
        """All currently-Up monitored paths to ``peer``."""
        return [m for (p, _, _), m in self.paths.items() if p == peer and m.is_up]

    def _on_packet(self, pkt: Packet) -> None:
        msg = pkt.payload
        if not isinstance(msg, HelloMsg):
            return
        # The peer's (src_if, dst_if) is our (remote_if, local_if).
        key = (pkt.src.node, msg.dst_if, msg.src_if)
        mon = self.paths.get(key)
        if mon is not None:
            mon._on_hello(msg)
