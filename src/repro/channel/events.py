"""Event and state vocabulary for the consistent-history link protocol.

Section 2.2 of the paper: each end of a monitored channel runs a state
machine driven by three triggers —

- ``TOUT``: bidirectional communication has (probably) been lost,
- ``TIN``: bidirectional communication has (probably) been restored,
- ``TOKEN``: receipt of one conserved token from the peer,

and publishes an *observable channel state* (Up/Down) whose transition
history is guaranteed identical at both ends, with bounded slack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ChannelView", "Trigger", "Transition"]


class ChannelView(enum.Enum):
    """The observable channel state published to applications."""

    UP = "up"
    DOWN = "down"

    def flipped(self) -> "ChannelView":
        """The opposite view."""
        return ChannelView.DOWN if self is ChannelView.UP else ChannelView.UP

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Trigger(enum.Enum):
    """What caused a state-machine step."""

    TOUT = "tout"  # time-out: link probably lost
    TIN = "tin"  # time-in: link probably restored
    TOKEN = "token"  # token received from the peer


@dataclass(frozen=True)
class Transition:
    """One observable Up/Down flip at one endpoint."""

    index: int  # 0-based position in this endpoint's history
    view: ChannelView  # the view *after* the flip
    trigger: Trigger  # what caused it
    time: float = 0.0  # simulation time, when known

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"#{self.index}->{self.view} ({self.trigger.value} @ {self.time:.6f})"
