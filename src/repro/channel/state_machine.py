"""The consistent-history state machine (paper Figs. 7 and 8).

Pure protocol logic, no I/O: feed triggers in, get token-send actions
out.  One machine runs at each end of a monitored channel; tokens travel
between them on a reliable in-order substrate (in practice, cumulative
counters piggybacked on pings — see :mod:`repro.channel.monitor`).

Semantics, reconstructed from the paper's state descriptions
(Sec. 2.3/2.4):

- The machine holds ``t`` tokens, ``0 ≤ t ≤ N`` (the slack).  ``N − t``
  is the number of the machine's own transitions not yet acknowledged by
  the peer.  Both sides start Up with ``t = N``.
- **tout** while Up: if ``t > 0``, flip to Down and send one token
  (consuming it); if ``t == 0`` the flip is *blocked* by the
  bounded-slack constraint (the monitor will re-raise the tout later).
  A tout while Down is a no-op.
- **tin** while Down: symmetric — flip to Up and send one token when
  ``t > 0``; blocked at ``t == 0``; no-op while Up.
- **token receipt**: if ``t == N`` the peer has gotten *ahead* (it made
  a transition we have not mirrored), so flip immediately — a
  "catching-up" transition — and send a token back (``t`` stays ``N``).
  Otherwise absorb the token (``t += 1``) as an acknowledgement of one
  of our past transitions.
- **token-implies-tin** (the Fig. 7 / N = 2 behaviour, used whenever
  tokens ride on ping responses): a token that arrives is itself proof
  the channel works, so after absorbing, if we are fully acknowledged
  (``t == N``) and still Down, flip Up as if a tin had fired.  With
  ``slack=2`` and this flag the machine is *exactly* the five-state
  machine of Fig. 7 (Up2, Down2, Down1, Up1, Down0).

The three paper properties are testable on this object:

- *Correctness* — with a live channel both ends converge to the true
  state (see monitor tests);
- *Bounded slack* — ``lead = N − t`` never exceeds ``N``, hence the two
  ends' transition counts never differ by more than ``N``;
- *Stability* — each trigger causes at most one observable transition
  (``transitions_per_trigger`` in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .events import ChannelView, Transition, Trigger

__all__ = ["ConsistentHistoryMachine", "StepResult"]


@dataclass
class StepResult:
    """Outcome of feeding one trigger to the machine."""

    tokens_to_send: int = 0
    transition: Optional[Transition] = None
    blocked: bool = False

    @property
    def transitioned(self) -> bool:
        """Whether the observable view flipped."""
        return self.transition is not None


class ConsistentHistoryMachine:
    """One endpoint of the consistent-history link protocol.

    Parameters
    ----------
    slack:
        The bound N ≥ 2 on how far this endpoint's transition history may
        lead or lag the peer's.
    token_implies_tin:
        Treat token arrival as evidence of connectivity (Fig. 7 mode;
        required when tokens are piggybacked on pings and no explicit
        tin source exists).
    name:
        Label used in traces.
    """

    def __init__(self, slack: int = 2, token_implies_tin: bool = True, name: str = ""):
        if slack < 2:
            raise ValueError("slack must be at least 2 (paper Sec. 2.3)")
        self.slack = slack
        self.token_implies_tin = token_implies_tin
        self.name = name
        self.view = ChannelView.UP
        self.tokens = slack  # t: starts full, no unacknowledged transitions
        self.history: list[Transition] = []
        self.tokens_sent_total = 0
        self.tokens_received_total = 0
        self.blocked_events = 0

    # -- invariant helpers -----------------------------------------------

    @property
    def unacknowledged(self) -> int:
        """Own transitions the peer has not yet acknowledged (= N − t)."""
        return self.slack - self.tokens

    @property
    def transition_count(self) -> int:
        """Observable transitions made so far."""
        return len(self.history)

    def state_label(self) -> str:
        """Paper-style state name, e.g. ``Up(t=2)``."""
        return f"{'Up' if self.view is ChannelView.UP else 'Down'}(t={self.tokens})"

    # -- core step -------------------------------------------------------------

    def _flip(self, trigger: Trigger, now: float) -> Transition:
        self.view = self.view.flipped()
        tr = Transition(
            index=len(self.history), view=self.view, trigger=trigger, time=now
        )
        self.history.append(tr)
        return tr

    def on_timeout(self, now: float = 0.0) -> StepResult:
        """Feed a tout (link probably lost)."""
        if self.view is ChannelView.DOWN:
            return StepResult()  # already down: nothing observable
        if self.tokens == 0:
            self.blocked_events += 1
            return StepResult(blocked=True)
        self.tokens -= 1
        self.tokens_sent_total += 1
        return StepResult(tokens_to_send=1, transition=self._flip(Trigger.TOUT, now))

    def on_timein(self, now: float = 0.0) -> StepResult:
        """Feed a tin (link probably restored)."""
        if self.view is ChannelView.UP:
            return StepResult()
        if self.tokens == 0:
            self.blocked_events += 1
            return StepResult(blocked=True)
        self.tokens -= 1
        self.tokens_sent_total += 1
        return StepResult(tokens_to_send=1, transition=self._flip(Trigger.TIN, now))

    def on_token(self, now: float = 0.0) -> StepResult:
        """Feed one received token."""
        self.tokens_received_total += 1
        if self.tokens == self.slack:
            # Peer got ahead of us: mirror its transition immediately
            # ("catching-up" state in the paper), passing the token on.
            self.tokens_sent_total += 1
            return StepResult(
                tokens_to_send=1, transition=self._flip(Trigger.TOKEN, now)
            )
        self.tokens += 1
        if (
            self.token_implies_tin
            and self.tokens == self.slack
            and self.view is ChannelView.DOWN
        ):
            # Fully acknowledged, channel demonstrably alive: implicit tin.
            self.tokens -= 1
            self.tokens_sent_total += 1
            return StepResult(
                tokens_to_send=1, transition=self._flip(Trigger.TOKEN, now)
            )
        return StepResult()

    def feed(self, trigger: Trigger, now: float = 0.0) -> StepResult:
        """Dispatch by trigger kind (convenience for property tests)."""
        if trigger is Trigger.TOUT:
            return self.on_timeout(now)
        if trigger is Trigger.TIN:
            return self.on_timein(now)
        return self.on_token(now)

    def __repr__(self) -> str:
        # "?" for unnamed machines: falling back to id(self) here once
        # injected a per-process memory address into traces (RL003).
        return f"<CHM {self.name or '?'} {self.state_label()} n={self.transition_count}>"
